(* Tests for the workload generators and a few end-to-end shape
   invariants from the paper's evaluation. *)

module Simtime = Dcsim.Simtime
module Engine = Dcsim.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let pair_testbed ?(config = Compute.Cost_params.baseline) () =
  let tb = Experiments.Testbed.create ~server_count:2 ~config () in
  let a =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:0 ~name:"a" ~ip_last_octet:1 ())
  in
  let b =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:1 ~name:"b" ~ip_last_octet:2 ())
  in
  (tb, a, b)

let test_transactions_complete () =
  let tb, a, b = pair_testbed () in
  Workloads.Transactions.Server.install ~vm:b.Host.Server.vm ~port:9000
    ~response_size:256 ();
  let c =
    Workloads.Transactions.Client.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        Workloads.Transactions.Client.servers = [ (Host.Vm.ip b.Host.Server.vm, 9000) ];
        connections = 2;
        outstanding = 4;
        request_size = 64;
        total_requests = Some 500;
        src_port_base = 40000;
      }
  in
  let finished = ref false in
  Workloads.Transactions.Client.on_finish c (fun () -> finished := true);
  Experiments.Testbed.run_for tb ~seconds:2.0;
  checki "completed all" 500 (Workloads.Transactions.Client.completed c);
  checkb "finish callback" true !finished;
  checkb "finish time set" true (Workloads.Transactions.Client.finish_time c <> None);
  checkb "latency measured" true (Workloads.Transactions.Client.mean_latency_us c > 10.0);
  checkb "p99 >= mean" true
    (Workloads.Transactions.Client.p99_latency_us c
    >= Workloads.Transactions.Client.mean_latency_us c)

let test_transactions_retry_lost_requests () =
  let tb, a, b = pair_testbed () in
  Workloads.Transactions.Server.install ~vm:b.Host.Server.vm ~port:9000
    ~response_size:64 ();
  let f_block = ref None in
  let c =
    Workloads.Transactions.Client.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        Workloads.Transactions.Client.servers = [ (Host.Vm.ip b.Host.Server.vm, 9000) ];
        connections = 1;
        outstanding = 2;
        request_size = 64;
        total_requests = Some 5000;
        src_port_base = 41000;
      }
  in
  ignore f_block;
  (* Briefly blackhole the flow mid-run: some requests are lost, the
     watchdog re-issues them, and the run still completes. *)
  let ovs = Host.Server.ovs tb.Experiments.Testbed.servers.(0) in
  ignore
    (Engine.after tb.Experiments.Testbed.engine (Simtime.span_ms 50.0) (fun () ->
         List.iter
           (fun (flow, _, _) -> Vswitch.Ovs.set_flow_blocked ovs flow true)
           (Vswitch.Ovs.active_flows ovs)));
  ignore
    (Engine.after tb.Experiments.Testbed.engine (Simtime.span_ms 150.0) (fun () ->
         List.iter
           (fun (flow, _, _) -> Vswitch.Ovs.set_flow_blocked ovs flow false)
           (Vswitch.Ovs.active_flows ovs)));
  Experiments.Testbed.run_for tb ~seconds:5.0;
  checki "completed despite loss" 5000 (Workloads.Transactions.Client.completed c);
  checkb "retries recorded" true (Workloads.Transactions.Client.retries c > 0)

let test_stream_goodput_measured () =
  let tb, a, b = pair_testbed () in
  Workloads.Stream.install_sink ~vm:b.Host.Server.vm ~port:5001 ();
  let s =
    Workloads.Stream.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        (Workloads.Stream.default_config ~dst_ip:(Host.Vm.ip b.Host.Server.vm)) with
        Workloads.Stream.dst_port = 5001;
      }
  in
  Experiments.Testbed.run_for tb ~seconds:0.5;
  let g =
    Workloads.Stream.goodput_gbps s ~now:(Engine.now tb.Experiments.Testbed.engine)
  in
  checkb "several Gb/s" true (g > 1.0);
  checkb "bytes acked grow" true (Workloads.Stream.bytes_acked s > 1_000_000)

let test_stream_total_bytes_stops () =
  let tb, a, b = pair_testbed () in
  Workloads.Stream.install_sink ~vm:b.Host.Server.vm ~port:5001 ();
  let s =
    Workloads.Stream.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        (Workloads.Stream.default_config ~dst_ip:(Host.Vm.ip b.Host.Server.vm)) with
        Workloads.Stream.dst_port = 5001;
        total_bytes = Some 320_000;
      }
  in
  Experiments.Testbed.run_for tb ~seconds:1.0;
  checkb "finished" true (Workloads.Stream.finished s);
  checki "sent exactly the budget" 320_000 (Workloads.Stream.bytes_sent s)

let test_scp_paced_low_pps () =
  let tb, a, b = pair_testbed () in
  Workloads.Background.install_scp_sink ~vm:b.Host.Server.vm;
  let scp =
    Workloads.Background.scp ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm)
      ()
  in
  Experiments.Testbed.run_for tb ~seconds:2.0;
  let stream = Workloads.Background.scp_stream scp in
  let msgs = Workloads.Stream.bytes_sent stream / 1448 in
  let pps = float_of_int msgs /. 2.0 in
  (* §6.2.1: ~135 pps outgoing. *)
  checkb "~135 pps" true (Float.abs (pps -. 135.0) < 15.0)

let test_flowgen_generates () =
  let tb, a, b = pair_testbed () in
  let config =
    { Workloads.Flowgen.default_config with Workloads.Flowgen.arrival_rate = 200.0 }
  in
  Workloads.Flowgen.install_sinks ~vm:b.Host.Server.vm ~dst_port_base:30000 config;
  let g =
    Workloads.Flowgen.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm)
      ~dst_port_base:30000 config
  in
  Experiments.Testbed.run_for tb ~seconds:1.0;
  let started = Workloads.Flowgen.flows_started g in
  checkb "poisson arrivals ~200" true (started > 120 && started < 300);
  checkb "bytes offered" true (Workloads.Flowgen.bytes_offered g > 0);
  Workloads.Flowgen.stop g;
  let frozen = Workloads.Flowgen.flows_started g in
  Experiments.Testbed.run_for tb ~seconds:0.5;
  checki "stop stops arrivals" frozen (Workloads.Flowgen.flows_started g)

let test_flowgen_locality () =
  let tb, a, b = pair_testbed () in
  let config =
    {
      Workloads.Flowgen.default_config with
      Workloads.Flowgen.arrival_rate = 500.0;
      hot_fraction = 0.9;
      hot_services = 2;
      cold_services = 50;
    }
  in
  Workloads.Flowgen.install_sinks ~vm:b.Host.Server.vm ~dst_port_base:30000 config;
  ignore
    (Workloads.Flowgen.start ~engine:tb.Experiments.Testbed.engine
       ~vm:a.Host.Server.vm
       ~dst_ip:(Host.Vm.ip b.Host.Server.vm)
       ~dst_port_base:30000 config);
  Experiments.Testbed.run_for tb ~seconds:1.0;
  (* The hot destination ports must dominate the OVS flow table. *)
  let ovs = Host.Server.ovs tb.Experiments.Testbed.servers.(0) in
  let hot, cold =
    List.fold_left
      (fun (h, c) (flow, pkts, _) ->
        if flow.Netcore.Fkey.dst_port < 30002 then (h + pkts, c) else (h, c + pkts))
      (0, 0) (Vswitch.Ovs.active_flows ovs)
  in
  checkb "hot set dominates" true (hot > 3 * cold)

(* --- Port space and source-port aliasing (regression) --- *)

let test_portspace_basics () =
  let ps = Workloads.Portspace.create ~lo:100 ~hi:110 () in
  checki "capacity" 10 (Workloads.Portspace.capacity ps);
  let drawn = List.init 10 (fun _ -> Workloads.Portspace.alloc ps) in
  let ports = List.filter_map Fun.id drawn in
  checki "all ten allocated" 10 (List.length ports);
  checki "all distinct" 10 (List.length (List.sort_uniq compare ports));
  checkb "exhausted -> None" true (Workloads.Portspace.alloc ps = None);
  checki "in_use tracks" 10 (Workloads.Portspace.in_use ps);
  Workloads.Portspace.release ps 105;
  Workloads.Portspace.release ps 105;
  checki "release idempotent" 9 (Workloads.Portspace.in_use ps);
  checkb "freed port no longer live" true
    (not (Workloads.Portspace.is_live ps 105));
  (match Workloads.Portspace.alloc ps with
  | Some p -> checki "recycles the freed port" 105 p
  | None -> Alcotest.fail "expected the freed port back");
  checki "full again" 10 (Workloads.Portspace.in_use ps)

(* Regression for the source-port wraparound: the generator used to
   stamp src ports from a counter folded into a 10k window, so the
   10_001st concurrent flow aliased the 1st flow's Fkey — merging
   their OVS flow entries, ME histories and cache verdicts. With the
   port-space allocator every live flow must own a distinct entry in
   the source vswitch, even past 10k concurrent. *)
let test_flowgen_no_src_port_aliasing () =
  let tb, a, b = pair_testbed () in
  let config =
    {
      Workloads.Flowgen.default_config with
      Workloads.Flowgen.hot_fraction = 1.0;
      hot_services = 1;
      cold_services = 1;
      (* Multi-message flows with hour-long pacing: all stay live. *)
      mean_flow_bytes = 10.0 *. 1448.0;
      message_gap = Simtime.span_sec 3600.0;
    }
  in
  Workloads.Flowgen.install_sinks ~vm:b.Host.Server.vm ~dst_port_base:30000
    config;
  let g =
    Workloads.Flowgen.create ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm)
      ~dst_port_base:30000 config
  in
  let n = 12_000 in
  for _ = 1 to n do
    Workloads.Flowgen.launch g
  done;
  Experiments.Testbed.run_for tb ~seconds:2.0;
  checki "all launched flows live" n (Workloads.Flowgen.live_flows g);
  checki "none shed" 0 (Workloads.Flowgen.flows_skipped g);
  let ovs = Host.Server.ovs tb.Experiments.Testbed.servers.(0) in
  let entries = Vswitch.Ovs.active_flows ovs in
  checki "one vswitch entry per live flow (no Fkey aliasing)" n
    (List.length entries);
  let src_ports =
    List.sort_uniq compare
      (List.map (fun (f, _, _) -> f.Netcore.Fkey.src_port) entries)
  in
  checki "src ports all distinct" n (List.length src_ports)

(* --- Stream ack accounting (regression) --- *)

(* Regression for the tail-ack bug: with a message count not divisible
   by [ack_every] the sink never acknowledged the final partial batch,
   so a finite stream finished with [bytes_acked < bytes_sent] forever.
   The sink must ack the fin-marked last message unconditionally. *)
let test_stream_tail_acked () =
  let tb, a, b = pair_testbed () in
  Workloads.Stream.install_sink ~vm:b.Host.Server.vm ~port:5001 ();
  let base = Workloads.Stream.default_config ~dst_ip:(Host.Vm.ip b.Host.Server.vm) in
  (* 7 messages with ack_every = 4: the tail batch of 3 is acked only
     by the fin path. *)
  let s =
    Workloads.Stream.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        base with
        Workloads.Stream.dst_port = 5001;
        total_bytes = Some (7 * base.Workloads.Stream.message_size);
      }
  in
  Experiments.Testbed.run_for tb ~seconds:1.0;
  checkb "finished" true (Workloads.Stream.finished s);
  checki "sent the whole budget" (7 * base.Workloads.Stream.message_size)
    (Workloads.Stream.bytes_sent s);
  checki "every sent byte acked (tail batch included)"
    (Workloads.Stream.bytes_sent s)
    (Workloads.Stream.bytes_acked s)

(* The cumulative-count acks must never credit bytes the sender has
   not sent (the old fixed-increment credit could). *)
let test_stream_ack_never_exceeds_sent () =
  let tb, a, b = pair_testbed () in
  Workloads.Stream.install_sink ~vm:b.Host.Server.vm ~port:5002 ();
  let s =
    Workloads.Stream.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        (Workloads.Stream.default_config ~dst_ip:(Host.Vm.ip b.Host.Server.vm)) with
        Workloads.Stream.dst_port = 5002;
      }
  in
  (* Sample the invariant repeatedly mid-flight. *)
  for i = 1 to 20 do
    ignore
      (Engine.after tb.Experiments.Testbed.engine
         (Simtime.span_ms (float_of_int i *. 10.0))
         (fun () ->
           checkb "acked <= sent" true
             (Workloads.Stream.bytes_acked s <= Workloads.Stream.bytes_sent s)))
  done;
  Experiments.Testbed.run_for tb ~seconds:0.25;
  checkb "acked grows" true (Workloads.Stream.bytes_acked s > 0);
  Workloads.Stream.stop s

(* --- Loadgen distribution and churn properties --- *)

let prop_pareto_mean_converges =
  QCheck2.Test.make ~name:"pareto sample mean converges to configured mean"
    ~count:20
    QCheck2.Gen.(pair (int_range 1 1_000_000) (float_range 2.2 3.5))
    (fun (seed, shape) ->
      let rng = Dcsim.Rng.create ~seed in
      let mean = 50_000.0 in
      let scale = mean *. (shape -. 1.0) /. shape in
      let n = 30_000 in
      let sum = ref 0.0 in
      for _ = 1 to n do
        sum := !sum +. Dcsim.Rng.pareto rng ~shape ~scale
      done;
      let sample_mean = !sum /. float_of_int n in
      Float.abs (sample_mean -. mean) /. mean < 0.2)

let prop_lognormal_mean_converges =
  QCheck2.Test.make ~name:"lognormal sample mean is exp(mu + sigma^2/2)"
    ~count:20
    QCheck2.Gen.(
      triple (int_range 1 1_000_000) (float_range 0.0 5.0)
        (float_range 0.1 1.0))
    (fun (seed, mu, sigma) ->
      let rng = Dcsim.Rng.create ~seed in
      let expected = exp (mu +. (sigma *. sigma /. 2.0)) in
      let n = 30_000 in
      let sum = ref 0.0 in
      for _ = 1 to n do
        sum := !sum +. Dcsim.Rng.lognormal rng ~mu ~sigma
      done;
      let sample_mean = !sum /. float_of_int n in
      Float.abs (sample_mean -. expected) /. expected < 0.15)

(* The diurnal curve must integrate to 1 over a day, whatever its
   shape — a modulated day offers exactly the configured volume. *)
let prop_curve_mean_one =
  let curve_gen =
    QCheck2.Gen.(
      oneof
        [
          return Workloads.Loadgen.Flat;
          map
            (fun trough -> Workloads.Loadgen.Sinusoid { trough })
            (float_range 0.0 1.0);
          map
            (fun l -> Workloads.Loadgen.Piecewise (Array.of_list l))
            (list_size (int_range 1 12) (float_range 0.1 10.0));
        ])
  in
  QCheck2.Test.make ~name:"diurnal curve integrates to the daily volume"
    ~count:50 curve_gen
    (fun curve ->
      let n = 20_000 in
      let sum = ref 0.0 in
      for i = 0 to n - 1 do
        sum :=
          !sum
          +. Workloads.Loadgen.curve_multiplier curve
               ~frac:((float_of_int i +. 0.5) /. float_of_int n)
      done;
      let mean = !sum /. float_of_int n in
      let peak = Workloads.Loadgen.curve_peak curve in
      Float.abs (mean -. 1.0) < 0.02
      && peak >= mean -. 0.02
      && peak > 0.0)

(* Tenant churn through the two-phase machinery must leave nothing
   behind: however many cycles run, every migration ends committed,
   and the rack's TCAM holds exactly what it held before the churn —
   no leaked rule budget. *)
let prop_churn_fully_departed =
  QCheck2.Test.make ~name:"churned tenants end fully departed" ~count:15
    QCheck2.Gen.(pair (int_range 1 25) (int_range 1 1_000_000))
    (fun (cycles, seed) ->
      let engine = Engine.create ~seed () in
      let tb = Experiments.Testbed.create ~engine ~server_count:2 () in
      let attached =
        Experiments.Testbed.add_vm tb
          (Experiments.Testbed.vm_spec ~server:0 ~name:"churn" ~ip_last_octet:1
             ())
      in
      let rm =
        Fastrak.Rule_manager.create ~engine ~config:Fastrak.Config.default
          ~tor:tb.Experiments.Testbed.tor
          ~servers:(Array.to_list tb.Experiments.Testbed.servers)
          ()
      in
      let tcam = Tor.Tor_switch.tcam tb.Experiments.Testbed.tor in
      let used_before = Tor.Tcam.used tcam in
      let vm_ip = Host.Vm.ip attached.Host.Server.vm in
      let tenant = Host.Vm.tenant attached.Host.Server.vm in
      let all_committed = ref true in
      for i = 1 to cycles do
        let mg = Fastrak.Rule_manager.begin_vm_migration rm ~tenant ~vm_ip in
        let server =
          Host.Server.name tb.Experiments.Testbed.servers.(i mod 2)
        in
        if not (Fastrak.Rule_manager.commit_vm_migration rm mg ~new_server:server)
        then all_committed := false;
        if Fastrak.Rule_manager.migration_state mg <> `Committed then
          all_committed := false
      done;
      Engine.run engine;
      !all_committed
      && Tor.Tcam.used tcam = used_before
      && Tor.Tcam.used tcam <= Tor.Tcam.capacity tcam)

(* --- Paper-shape invariants (fast versions of the benches) --- *)

let burst_tps path =
  let tb, a, b = pair_testbed () in
  if path = `Vf then begin
    Experiments.Testbed.force_path_vf tb a;
    Experiments.Testbed.force_path_vf tb b
  end;
  Workloads.Netperf.install_rr_server ~vm:b.Host.Server.vm ~response_size:64;
  let c =
    Workloads.Netperf.burst_rr ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm)
      ~size:64 ()
  in
  Experiments.Testbed.run_for tb ~seconds:0.4;
  Workloads.Transactions.Client.reset_measurement c
    ~now:(Engine.now tb.Experiments.Testbed.engine);
  Experiments.Testbed.run_for tb ~seconds:0.6;
  Workloads.Transactions.Client.tps c ~now:(Engine.now tb.Experiments.Testbed.engine)

let test_shape_burst_tps_ratio () =
  let vif = burst_tps `Vif and vf = burst_tps `Vf in
  let ratio = vf /. vif in
  (* Paper: ~60K vs ~34K, i.e. ~1.76x. *)
  checkb "sr-iov roughly doubles burst TPS" true (ratio > 1.4 && ratio < 2.3);
  checkb "vif in the 30-40K band" true (vif > 30_000.0 && vif < 40_000.0);
  checkb "vf in the 55-65K band" true (vf > 55_000.0 && vf < 65_000.0)

let test_shape_tunneling_capped () =
  let tb, a, b = pair_testbed ~config:Compute.Cost_params.with_tunneling () in
  Experiments.Testbed.connect_tunnels tb;
  Workloads.Netperf.install_stream_sink ~vm:b.Host.Server.vm;
  let streams =
    Workloads.Netperf.tcp_stream ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm)
      ~size:32000 ()
  in
  Experiments.Testbed.run_for tb ~seconds:0.4;
  List.iter
    (fun s ->
      Workloads.Stream.reset_measurement s
        ~now:(Engine.now tb.Experiments.Testbed.engine))
    streams;
  Experiments.Testbed.run_for tb ~seconds:0.6;
  let now = Engine.now tb.Experiments.Testbed.engine in
  let g = List.fold_left (fun acc s -> acc +. Workloads.Stream.goodput_gbps s ~now) 0.0 streams in
  (* "The current OVS tunneling implementation was not able to support
     throughputs beyond 2 Gbps." *)
  checkb "<= ~2.2 Gb/s" true (g < 2.2);
  checkb "but not collapsed" true (g > 1.0)

let test_shape_closed_loop_latency () =
  let rr path =
    let tb, a, b = pair_testbed () in
    if path = `Vf then begin
      Experiments.Testbed.force_path_vf tb a;
      Experiments.Testbed.force_path_vf tb b
    end;
    Workloads.Netperf.install_rr_server ~vm:b.Host.Server.vm ~response_size:64;
    let c =
      Workloads.Netperf.tcp_rr ~engine:tb.Experiments.Testbed.engine
        ~vm:a.Host.Server.vm
        ~dst_ip:(Host.Vm.ip b.Host.Server.vm)
        ~size:64
    in
    Experiments.Testbed.run_for tb ~seconds:0.5;
    Workloads.Transactions.Client.mean_latency_us c
  in
  let vif = rr `Vif and vf = rr `Vf in
  checkb "sr-iov lower latency" true (vf < vif);
  checkb "meaningfully lower" true (vif /. vf > 1.5)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "transactions complete" test_transactions_complete;
    t "transactions retry lost requests" test_transactions_retry_lost_requests;
    t "stream goodput" test_stream_goodput_measured;
    t "stream total bytes" test_stream_total_bytes_stops;
    t "scp paced at ~135 pps" test_scp_paced_low_pps;
    t "flowgen generates" test_flowgen_generates;
    t "flowgen locality" test_flowgen_locality;
    t "portspace basics" test_portspace_basics;
    t "flowgen no src-port aliasing past 10k flows"
      test_flowgen_no_src_port_aliasing;
    t "stream tail batch acked" test_stream_tail_acked;
    t "stream acks never exceed sent" test_stream_ack_never_exceeds_sent;
    QCheck_alcotest.to_alcotest prop_pareto_mean_converges;
    QCheck_alcotest.to_alcotest prop_lognormal_mean_converges;
    QCheck_alcotest.to_alcotest prop_curve_mean_one;
    QCheck_alcotest.to_alcotest prop_churn_fully_departed;
    t "shape: burst tps ratio" test_shape_burst_tps_ratio;
    t "shape: tunneling capped" test_shape_tunneling_capped;
    t "shape: closed-loop latency" test_shape_closed_loop_latency;
  ]
