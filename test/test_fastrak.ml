(* Tests for the FasTrak control plane: FPS, scoring, decision engine,
   measurement engine, demand profiles, and the full rule manager loop. *)

module Simtime = Dcsim.Simtime
module Engine = Dcsim.Engine
module Fkey = Netcore.Fkey
module Ipv4 = Netcore.Ipv4

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf tol = Alcotest.check (Alcotest.float tol)
let tenant = Netcore.Tenant.of_int 7

(* --- FPS --- *)

let test_fps_proportional () =
  let split =
    Fastrak.Fps.split ~total_bps:1e9 ~overflow_bps:0.0 ~current:None
      {
        Fastrak.Fps.demand_soft_bps = 3e8;
        demand_hard_bps = 1e8;
        soft_maxed = false;
        hard_maxed = false;
      }
  in
  checkf 1e6 "soft 3/4" 7.5e8 split.Fastrak.Fps.soft.Rules.Rate_limit_spec.rate_bps;
  checkf 1e6 "hard 1/4" 2.5e8 split.Fastrak.Fps.hard.Rules.Rate_limit_spec.rate_bps

let test_fps_sums_to_total_plus_overflow () =
  let split =
    Fastrak.Fps.split ~total_bps:1e9 ~overflow_bps:5e7 ~current:None
      {
        Fastrak.Fps.demand_soft_bps = 9e8;
        demand_hard_bps = 1e8;
        soft_maxed = false;
        hard_maxed = false;
      }
  in
  checkf 1e6 "Ls + Lh = total + 2O" (1e9 +. 1e8)
    (split.Fastrak.Fps.soft.Rules.Rate_limit_spec.rate_bps
    +. split.Fastrak.Fps.hard.Rules.Rate_limit_spec.rate_bps)

let test_fps_floor () =
  let split =
    Fastrak.Fps.split ~total_bps:1e9 ~overflow_bps:0.0 ~current:None
      {
        Fastrak.Fps.demand_soft_bps = 0.0;
        demand_hard_bps = 1e9;
        soft_maxed = false;
        hard_maxed = false;
      }
  in
  checkb "soft floored at 5%" true
    (split.Fastrak.Fps.soft.Rules.Rate_limit_spec.rate_bps >= 0.05 *. 1e9 -. 1.0)

let test_fps_no_demand_even_split () =
  let split =
    Fastrak.Fps.split ~total_bps:1e9 ~overflow_bps:0.0 ~current:None
      {
        Fastrak.Fps.demand_soft_bps = 0.0;
        demand_hard_bps = 0.0;
        soft_maxed = false;
        hard_maxed = false;
      }
  in
  checkf 1e6 "even" 5e8 split.Fastrak.Fps.soft.Rules.Rate_limit_spec.rate_bps

let test_fps_maxed_grows () =
  (* A maxed hardware path must win share even if its measured demand
     equals the soft side (it is clipped by its own limit). *)
  let current =
    Fastrak.Fps.split ~total_bps:1e9 ~overflow_bps:0.0 ~current:None
      {
        Fastrak.Fps.demand_soft_bps = 5e8;
        demand_hard_bps = 5e8;
        soft_maxed = false;
        hard_maxed = false;
      }
  in
  let next =
    Fastrak.Fps.split ~total_bps:1e9 ~overflow_bps:0.0 ~current:(Some current)
      {
        Fastrak.Fps.demand_soft_bps = 4e8;
        demand_hard_bps = 4e8;
        soft_maxed = false;
        hard_maxed = true;
      }
  in
  checkb "hard grows past half" true
    (next.Fastrak.Fps.hard.Rules.Rate_limit_spec.rate_bps
    > current.Fastrak.Fps.hard.Rules.Rate_limit_spec.rate_bps)

let test_fps_unlimited_total () =
  let split =
    Fastrak.Fps.split ~total_bps:infinity ~overflow_bps:0.0 ~current:None
      {
        Fastrak.Fps.demand_soft_bps = 1.0;
        demand_hard_bps = 1.0;
        soft_maxed = false;
        hard_maxed = false;
      }
  in
  checkb "both unlimited" true
    (Rules.Rate_limit_spec.is_unlimited split.Fastrak.Fps.soft
    && Rules.Rate_limit_spec.is_unlimited split.Fastrak.Fps.hard)

let test_fps_maxed_unlimited_current () =
  (* Regression: a maxed side whose current limit is unlimited used to
     boost to 1.25 * infinity, making share_soft = inf/inf = NaN and
     installing NaN into both limiters. The boost must fall back to
     measured demand. *)
  let current =
    Some
      {
        Fastrak.Fps.soft = Rules.Rate_limit_spec.unlimited;
        hard = Rules.Rate_limit_spec.unlimited;
      }
  in
  let split =
    Fastrak.Fps.split ~total_bps:1e9 ~overflow_bps:5e7 ~current
      {
        Fastrak.Fps.demand_soft_bps = 4e8;
        demand_hard_bps = 2e8;
        soft_maxed = true;
        hard_maxed = true;
      }
  in
  let soft = split.Fastrak.Fps.soft.Rules.Rate_limit_spec.rate_bps in
  let hard = split.Fastrak.Fps.hard.Rules.Rate_limit_spec.rate_bps in
  checkb "soft finite" true (Float.is_finite soft);
  checkb "hard finite" true (Float.is_finite hard);
  (* With the boost disarmed the split follows measured demand 2:1. *)
  checkf 1e6 "soft by demand" (2.0 /. 3.0 *. 1e9 +. 5e7) soft;
  checkf 1e6 "hard by demand" (1.0 /. 3.0 *. 1e9 +. 5e7) hard

let prop_fps_split_finite =
  QCheck2.Test.make ~name:"fps split never NaN/negative" ~count:1000
    QCheck2.Gen.(
      let demand =
        oneof [ pure 0.0; float_bound_exclusive 2e9; pure 1e15; pure neg_infinity ]
      in
      quad demand demand (pair bool bool) (pair (int_range 0 2) (int_range 0 1)))
    (fun (ds, dh, (sm, hm), (cur_kind, ov_kind)) ->
      let overflow = if ov_kind = 0 then 0.0 else 5e7 in
      let current =
        match cur_kind with
        | 0 -> None
        | 1 ->
            (* Both sides unlimited: the maxed-boost corner. *)
            Some
              {
                Fastrak.Fps.soft = Rules.Rate_limit_spec.unlimited;
                hard = Rules.Rate_limit_spec.unlimited;
              }
        | _ ->
            Some
              {
                Fastrak.Fps.soft = Rules.Rate_limit_spec.make ~rate_bps:2e8 ();
                hard = Rules.Rate_limit_spec.make ~rate_bps:8e8 ();
              }
      in
      let split =
        Fastrak.Fps.split ~total_bps:1e9 ~overflow_bps:overflow ~current
          {
            Fastrak.Fps.demand_soft_bps = ds;
            demand_hard_bps = dh;
            soft_maxed = sm;
            hard_maxed = hm;
          }
      in
      let ok v = Float.is_finite v && v >= 0.0 in
      ok split.Fastrak.Fps.soft.Rules.Rate_limit_spec.rate_bps
      && ok split.Fastrak.Fps.hard.Rules.Rate_limit_spec.rate_bps)

(* --- Scoring --- *)

let test_scoring () =
  checkf 1e-9 "S = n*pps" 600.0
    (Fastrak.Scoring.score ~epochs_active:3 ~median_pps:200.0 ());
  checkf 1e-9 "priority multiplies" 1200.0
    (Fastrak.Scoring.score ~epochs_active:3 ~median_pps:200.0 ~priority:2.0 ());
  checkf 1e-9 "inactive scores zero" 0.0
    (Fastrak.Scoring.score ~epochs_active:0 ~median_pps:5000.0 ())

let test_scoring_mfu_not_elephant () =
  (* A service with 1000 small flows at ~3 packets each (3000 pps) must
     outrank a single elephant at 300 pps, regardless of bytes. *)
  let service = Fastrak.Scoring.score ~epochs_active:6 ~median_pps:3000.0 () in
  let elephant = Fastrak.Scoring.score ~epochs_active:6 ~median_pps:300.0 () in
  checkb "pps rules" true (service > elephant)

(* --- Decision engine --- *)

let candidate ?(score = 100.0) ?(entries = 2) ?(group = None) ~port () =
  {
    Fastrak.Decision_engine.pattern =
      { Fkey.Pattern.any with Fkey.Pattern.src_port = Some port };
    tenant;
    vm_ip = Ipv4.of_string "10.7.0.1";
    score;
    tcam_entries = entries;
    group;
  }

let decide ?(offloaded = []) ?(tcam_free = 100) ?(max_offloads = None)
    ?(min_score = 1.0) candidates =
  Fastrak.Decision_engine.decide ~candidates ~offloaded ~tcam_free ~max_offloads
    ~min_score ()

let ports l =
  List.sort compare
    (List.filter_map
       (fun (c : Fastrak.Decision_engine.candidate) ->
         c.Fastrak.Decision_engine.pattern.Fkey.Pattern.src_port)
       l)

let test_decide_ranks_by_score () =
  let d =
    decide ~tcam_free:4
      [ candidate ~score:10.0 ~port:1 (); candidate ~score:30.0 ~port:2 ();
        candidate ~score:20.0 ~port:3 () ]
  in
  Alcotest.check (Alcotest.list Alcotest.int) "top two fit" [ 2; 3 ]
    (ports d.Fastrak.Decision_engine.offload)

let test_decide_respects_capacity () =
  let d = decide ~tcam_free:3 [ candidate ~entries:2 ~port:1 (); candidate ~entries:2 ~port:2 () ] in
  checki "only one fits" 1 (List.length d.Fastrak.Decision_engine.offload)

let test_decide_min_score () =
  let d = decide ~min_score:50.0 [ candidate ~score:10.0 ~port:1 () ] in
  checki "below threshold" 0 (List.length d.Fastrak.Decision_engine.offload)

let test_decide_max_offloads () =
  let d =
    decide ~max_offloads:(Some 1)
      [ candidate ~score:10.0 ~port:1 (); candidate ~score:30.0 ~port:2 () ]
  in
  Alcotest.check (Alcotest.list Alcotest.int) "one only" [ 2 ]
    (ports d.Fastrak.Decision_engine.offload)

let test_decide_demotes_losers () =
  let old = candidate ~score:5.0 ~port:1 () in
  let d =
    decide
      ~offloaded:[ (old.Fastrak.Decision_engine.pattern, old) ]
      ~tcam_free:0
      [ candidate ~score:50.0 ~port:2 (); old ]
  in
  (* The freed entries of the demoted candidate fund the new winner. *)
  Alcotest.check (Alcotest.list Alcotest.int) "new winner" [ 2 ]
    (ports d.Fastrak.Decision_engine.offload);
  Alcotest.check (Alcotest.list Alcotest.int) "old demoted" [ 1 ]
    (ports d.Fastrak.Decision_engine.demote)

let test_decide_keeps_winners () =
  let old = candidate ~score:50.0 ~port:1 () in
  let d =
    decide
      ~offloaded:[ (old.Fastrak.Decision_engine.pattern, old) ]
      ~tcam_free:10 [ old; candidate ~score:10.0 ~port:2 () ]
  in
  Alcotest.check (Alcotest.list Alcotest.int) "kept" [ 1 ]
    (ports d.Fastrak.Decision_engine.keep);
  checkb "not re-offloaded" true
    (not (List.exists (fun c -> ports [ c ] = [ 1 ]) d.Fastrak.Decision_engine.offload))

let test_decide_idle_offloaded_demoted () =
  let old = candidate ~score:0.0 ~port:1 () in
  let d = decide ~offloaded:[ (old.Fastrak.Decision_engine.pattern, old) ] [] in
  Alcotest.check (Alcotest.list Alcotest.int) "idle demoted" [ 1 ]
    (ports d.Fastrak.Decision_engine.demote)

let test_decide_group_all_or_none () =
  (* Group of two needing 4 entries total: with only 3 free, neither
     member may be taken even though one would fit. *)
  let g = Some 1 in
  let d =
    decide ~tcam_free:3
      [ candidate ~score:100.0 ~entries:2 ~group:g ~port:1 ();
        candidate ~score:90.0 ~entries:2 ~group:g ~port:2 () ]
  in
  checki "none taken" 0 (List.length d.Fastrak.Decision_engine.offload);
  let d2 =
    decide ~tcam_free:4
      [ candidate ~score:100.0 ~entries:2 ~group:g ~port:1 ();
        candidate ~score:90.0 ~entries:2 ~group:g ~port:2 () ]
  in
  checki "both taken" 2 (List.length d2.Fastrak.Decision_engine.offload)

let test_decide_group_negative_scores () =
  (* Regression: [build_units] used to fold group scores from 0.0, so a
     group whose members all score below zero ranked at 0.0 — above any
     hotter (less negative) singleton. With a budget that fits only one
     unit, the pre-fix code offloads the cold group instead of the hot
     singleton. *)
  let g = Some 1 in
  let candidates =
    [
      candidate ~score:(-10.0) ~entries:1 ~group:g ~port:1 ();
      candidate ~score:(-20.0) ~entries:1 ~group:g ~port:2 ();
      candidate ~score:(-5.0) ~entries:2 ~port:3 ();
    ]
  in
  let d = decide ~min_score:(-100.0) ~tcam_free:2 candidates in
  Alcotest.check (Alcotest.list Alcotest.int) "hot singleton outranks cold group"
    [ 3 ]
    (ports d.Fastrak.Decision_engine.offload);
  (* The bug lived in [build_units], which the list baseline still
     goes through — it must agree. *)
  let b =
    Fastrak.Decision_engine.decide_list_baseline ~candidates ~offloaded:[]
      ~tcam_free:2 ~max_offloads:None ~min_score:(-100.0) ()
  in
  Alcotest.check (Alcotest.list Alcotest.int) "baseline agrees" [ 3 ]
    (ports b.Fastrak.Decision_engine.offload)

let test_decide_matches_list_baseline () =
  (* The hashtable rewrite must agree with the retained list-based
     implementation on randomized inputs: same offload/demote/keep
     sets. Seeded via Dcsim.Rng so failures reproduce. *)
  let rng = Dcsim.Rng.create ~seed:20260806 in
  for trial = 1 to 200 do
    let n = 1 + Dcsim.Rng.int rng 60 in
    let candidates =
      List.init n (fun i ->
          candidate
            ~score:(Dcsim.Rng.float rng 1000.0)
            ~entries:(1 + Dcsim.Rng.int rng 4)
            ~group:
              (if Dcsim.Rng.int rng 10 = 0 then Some (Dcsim.Rng.int rng 5)
               else None)
            ~port:i ())
    in
    let offloaded =
      List.filter_map
        (fun (c : Fastrak.Decision_engine.candidate) ->
          if Dcsim.Rng.int rng 3 = 0 then
            Some (c.Fastrak.Decision_engine.pattern, c)
          else None)
        candidates
    in
    let tcam_free = Dcsim.Rng.int rng 120 in
    let max_offloads =
      if Dcsim.Rng.bool rng then None else Some (Dcsim.Rng.int rng (n + 1))
    in
    let min_score = Dcsim.Rng.float rng 500.0 in
    let fast =
      Fastrak.Decision_engine.decide ~candidates ~offloaded ~tcam_free
        ~max_offloads ~min_score ()
    in
    let slow =
      Fastrak.Decision_engine.decide_list_baseline ~candidates ~offloaded
        ~tcam_free ~max_offloads ~min_score ()
    in
    let label what =
      Printf.sprintf "trial %d (%d cands, %d offloaded): %s" trial n
        (List.length offloaded) what
    in
    let check_same what a b =
      Alcotest.check (Alcotest.list Alcotest.int) (label what) (ports a) (ports b)
    in
    check_same "offload" slow.Fastrak.Decision_engine.offload
      fast.Fastrak.Decision_engine.offload;
    check_same "demote" slow.Fastrak.Decision_engine.demote
      fast.Fastrak.Decision_engine.demote;
    check_same "keep" slow.Fastrak.Decision_engine.keep
      fast.Fastrak.Decision_engine.keep
  done

let test_decide_scratch_reuse_matches_baseline () =
  (* One scratch reused across every trial (the production pattern: a
     ToR controller owns one for its lifetime): residue from call N
     must not leak into call N+1, so each call must still agree with
     the stateless list baseline. *)
  let scratch = Fastrak.Decision_engine.create_scratch () in
  let rng = Dcsim.Rng.create ~seed:20260808 in
  for trial = 1 to 100 do
    let n = 1 + Dcsim.Rng.int rng 60 in
    let candidates =
      List.init n (fun i ->
          candidate
            ~score:(Dcsim.Rng.float rng 1000.0)
            ~entries:(1 + Dcsim.Rng.int rng 4)
            ~group:
              (if Dcsim.Rng.int rng 10 = 0 then Some (Dcsim.Rng.int rng 5)
               else None)
            ~port:i ())
    in
    let offloaded =
      List.filter_map
        (fun (c : Fastrak.Decision_engine.candidate) ->
          if Dcsim.Rng.int rng 3 = 0 then
            Some (c.Fastrak.Decision_engine.pattern, c)
          else None)
        candidates
    in
    let tcam_free = Dcsim.Rng.int rng 120 in
    let max_offloads =
      if Dcsim.Rng.bool rng then None else Some (Dcsim.Rng.int rng (n + 1))
    in
    let min_score = Dcsim.Rng.float rng 500.0 in
    let fast =
      Fastrak.Decision_engine.decide ~scratch ~candidates ~offloaded ~tcam_free
        ~max_offloads ~min_score ()
    in
    let slow =
      Fastrak.Decision_engine.decide_list_baseline ~candidates ~offloaded
        ~tcam_free ~max_offloads ~min_score ()
    in
    let label what =
      Printf.sprintf "trial %d (%d cands, %d offloaded): %s" trial n
        (List.length offloaded) what
    in
    let check_same what a b =
      Alcotest.check (Alcotest.list Alcotest.int) (label what) (ports a) (ports b)
    in
    check_same "offload" slow.Fastrak.Decision_engine.offload
      fast.Fastrak.Decision_engine.offload;
    check_same "demote" slow.Fastrak.Decision_engine.demote
      fast.Fastrak.Decision_engine.demote;
    check_same "keep" slow.Fastrak.Decision_engine.keep
      fast.Fastrak.Decision_engine.keep
  done

(* --- Measurement engine --- *)

let me_config =
  {
    Fastrak.Config.default with
    Fastrak.Config.epoch_period = Simtime.span_ms 100.0;
    poll_gap = Simtime.span_ms 40.0;
    epochs_per_interval = 2;
    history_intervals = 2;
  }

let test_me_measures_pps () =
  let engine = Engine.create () in
  (* A synthetic counter source: 500 packets and 50 KB per poll-gap. *)
  let f =
    Fkey.make ~src_ip:(Ipv4.of_string "10.7.0.1") ~dst_ip:(Ipv4.of_string "10.7.0.2")
      ~src_port:10 ~dst_port:20 ~proto:Fkey.Tcp ~tenant
  in
  let packets = ref 0 in
  Engine.every engine (Simtime.span_ms 1.0) (fun () ->
      packets := !packets + 2;
      `Continue);
  let me =
    Fastrak.Measurement_engine.create ~engine ~config:me_config ~name:"t"
      ~poll:(fun () -> [ (f, !packets, !packets * 100) ])
      ~classify:(fun flow ->
        Some
          ( Fkey.Pattern.src_aggregate flow,
            {
              Fastrak.Measurement_engine.tenant;
              vm_ip = flow.Fkey.src_ip;
              direction = `Outgoing;
            } ))
  in
  let reports = ref [] in
  Fastrak.Measurement_engine.on_report me (fun r -> reports := r :: !reports);
  Fastrak.Measurement_engine.start me;
  Engine.run ~until:(Simtime.of_sec 1.0) engine;
  checkb "reports emitted" true (List.length !reports >= 2);
  let r = List.hd !reports in
  (match r.Fastrak.Measurement_engine.entries with
  | [ e ] ->
      (* 2 packets per ms = 2000 pps; bytes = 100/packet -> 1.6 Mb/s. *)
      checkb "pps ~2000" true (Float.abs (e.median_pps -. 2000.0) < 120.0);
      checkb "bps ~1.6e6" true (Float.abs (e.median_bps -. 1.6e6) < 1.6e5);
      checkb "active epochs counted" true (e.epochs_active >= 2);
      checkb "destination learned" true
        (List.exists (Ipv4.equal (Ipv4.of_string "10.7.0.2")) e.destinations)
  | l -> Alcotest.failf "expected one aggregate, got %d" (List.length l));
  checkb "intervals counted" true
    (Fastrak.Measurement_engine.intervals_completed me >= 2)

let test_me_idle_flows_dropped_from_report () =
  let engine = Engine.create () in
  let f =
    Fkey.make ~src_ip:(Ipv4.of_string "10.7.0.1") ~dst_ip:(Ipv4.of_string "10.7.0.2")
      ~src_port:10 ~dst_port:20 ~proto:Fkey.Tcp ~tenant
  in
  (* Counters never move: the flow exists but is idle. *)
  let me =
    Fastrak.Measurement_engine.create ~engine ~config:me_config ~name:"t"
      ~poll:(fun () -> [ (f, 42, 4200) ])
      ~classify:(fun flow ->
        Some
          ( Fkey.Pattern.src_aggregate flow,
            {
              Fastrak.Measurement_engine.tenant;
              vm_ip = flow.Fkey.src_ip;
              direction = `Outgoing;
            } ))
  in
  let last = ref None in
  Fastrak.Measurement_engine.on_report me (fun r -> last := Some r);
  Fastrak.Measurement_engine.start me;
  Engine.run ~until:(Simtime.of_sec 1.0) engine;
  match !last with
  | Some r -> checki "no active entries" 0 (List.length r.Fastrak.Measurement_engine.entries)
  | None -> Alcotest.fail "expected a report"

let test_me_counter_reset_clamped () =
  (* A flow evicted from the exact-match cache and re-created between
     polls restarts its kernel counters from zero; the resulting
     negative delta must be clamped (counted as a reset), not reported
     as negative pps that poisons the medians. *)
  let engine = Engine.create () in
  let f =
    Fkey.make ~src_ip:(Ipv4.of_string "10.7.0.1") ~dst_ip:(Ipv4.of_string "10.7.0.2")
      ~src_port:10 ~dst_port:20 ~proto:Fkey.Tcp ~tenant
  in
  let packets = ref 0 in
  Engine.every engine (Simtime.span_ms 1.0) (fun () ->
      packets := !packets + 2;
      `Continue);
  (* Mid-run eviction: counters restart from zero. With a 100 ms epoch
     period and 40 ms poll gap the epochs' poll windows sit at
     [100,140], [240,280], [380,420], ... — 399 ms lands inside one,
     so that delta is guaranteed to see p2 < p1. *)
  ignore (Engine.at engine (Simtime.of_ms 399.0) (fun () -> packets := 0));
  let me =
    Fastrak.Measurement_engine.create ~engine ~config:me_config ~name:"t"
      ~poll:(fun () -> [ (f, !packets, !packets * 100) ])
      ~classify:(fun flow ->
        Some
          ( Fkey.Pattern.src_aggregate flow,
            {
              Fastrak.Measurement_engine.tenant;
              vm_ip = flow.Fkey.src_ip;
              direction = `Outgoing;
            } ))
  in
  let reports = ref [] in
  Fastrak.Measurement_engine.on_report me (fun r -> reports := r :: !reports);
  let resets = Obs.Metrics.counter "fastrak.me.counter_resets" in
  let resets_before = Obs.Metrics.counter_value resets in
  Fastrak.Measurement_engine.start me;
  Engine.run ~until:(Simtime.of_sec 1.0) engine;
  checkb "reset counted" true (Obs.Metrics.counter_value resets > resets_before);
  checkb "reports emitted" true (!reports <> []);
  List.iter
    (fun (r : Fastrak.Measurement_engine.report) ->
      List.iter
        (fun (e : Fastrak.Measurement_engine.entry) ->
          checkb "median_pps non-negative" true (e.median_pps >= 0.0);
          checkb "median_bps non-negative" true (e.median_bps >= 0.0);
          checkb "last_pps non-negative" true (e.last_pps >= 0.0))
        r.Fastrak.Measurement_engine.entries)
    !reports

(* --- Demand profile --- *)

let test_profile_update_and_clone () =
  let vm_ip = Ipv4.of_string "10.7.0.1" in
  let p = Fastrak.Demand_profile.create ~tenant ~vm_ip in
  let entry pattern =
    {
      Fastrak.Measurement_engine.pattern;
      owner = { Fastrak.Measurement_engine.tenant; vm_ip; direction = `Outgoing };
      last_pps = 10.0;
      last_bps = 100.0;
      median_pps = 10.0;
      median_bps = 100.0;
      epochs_active = 2;
      destinations = [];
    }
  in
  let mine = Fkey.Pattern.from_vm vm_ip tenant in
  Fastrak.Demand_profile.update p
    { Fastrak.Measurement_engine.interval_index = 1; entries = [ entry mine ] };
  checki "one entry" 1 (Fastrak.Demand_profile.entry_count p);
  (* Entries owned by other VMs are ignored. *)
  let other = Ipv4.of_string "10.7.0.9" in
  let foreign =
    {
      (entry (Fkey.Pattern.from_vm other tenant)) with
      Fastrak.Measurement_engine.owner =
        { Fastrak.Measurement_engine.tenant; vm_ip = other; direction = `Outgoing };
    }
  in
  Fastrak.Demand_profile.update p
    { Fastrak.Measurement_engine.interval_index = 2; entries = [ foreign ] };
  checki "still one" 1 (Fastrak.Demand_profile.entry_count p);
  (* Cloning re-homes patterns to the new address. *)
  let clone = Fastrak.Demand_profile.clone_for p ~vm_ip:other in
  checki "clone carries history" 1 (Fastrak.Demand_profile.entry_count clone);
  match Fastrak.Demand_profile.entries clone with
  | [ e ] ->
      checkb "rehomed" true
        (e.Fastrak.Demand_profile.pattern.Fkey.Pattern.src_ip = Some other)
  | _ -> Alcotest.fail "expected one entry"

(* --- End-to-end rule manager --- *)

let fast_config =
  {
    Fastrak.Config.default with
    Fastrak.Config.epoch_period = Simtime.span_ms 100.0;
    poll_gap = Simtime.span_ms 40.0;
    min_score = 100.0;
  }

let hot_and_cold_testbed () =
  let tb = Experiments.Testbed.create ~server_count:2 () in
  let a =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:0 ~name:"hot" ~ip_last_octet:1 ())
  in
  let b =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:1 ~name:"sink" ~ip_last_octet:2 ())
  in
  Experiments.Testbed.connect_tunnels tb;
  let rm =
    Fastrak.Rule_manager.create ~engine:tb.Experiments.Testbed.engine
      ~config:fast_config ~tor:tb.Experiments.Testbed.tor
      ~servers:(Array.to_list tb.Experiments.Testbed.servers)
      ()
  in
  (tb, a, b, rm)

let test_rule_manager_offloads_hot_flow () =
  let tb, a, b, rm = hot_and_cold_testbed () in
  Workloads.Transactions.Server.install ~vm:b.Host.Server.vm ~port:9000
    ~response_size:64 ();
  (* A hot transactional service (~ thousands of pps). *)
  let client =
    Workloads.Transactions.Client.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        Workloads.Transactions.Client.servers = [ (Host.Vm.ip b.Host.Server.vm, 9000) ];
        connections = 1;
        outstanding = 8;
        request_size = 64;
        total_requests = None;
        src_port_base = 50_000;
      }
  in
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  checkb "offloaded something" true (Fastrak.Rule_manager.offloaded_count rm > 0);
  (* After offload the placer must route the hot flow via the VF. *)
  checkb "placer redirected" true (Host.Bonding.packets_via_vf a.Host.Server.bonding > 0);
  (* And the system keeps making progress end to end. *)
  let before = Workloads.Transactions.Client.completed client in
  Experiments.Testbed.run_for tb ~seconds:0.5;
  checkb "still progressing" true (Workloads.Transactions.Client.completed client > before)

let test_rule_manager_ignores_cold_flow () =
  let tb, a, b, rm = hot_and_cold_testbed () in
  (* A 20-pps trickle: score ~40 < min_score 100. *)
  Workloads.Background.install_scp_sink ~vm:b.Host.Server.vm;
  ignore
    (Workloads.Background.scp ~engine:tb.Experiments.Testbed.engine
       ~vm:a.Host.Server.vm
       ~dst_ip:(Host.Vm.ip b.Host.Server.vm)
       ~rate_bps:(20.0 *. 1448.0 *. 8.0)
       ());
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  checki "nothing offloaded" 0 (Fastrak.Rule_manager.offloaded_count rm)

let test_rule_manager_demotes_idle () =
  let tb, a, b, rm = hot_and_cold_testbed () in
  Workloads.Transactions.Server.install ~vm:b.Host.Server.vm ~port:9000
    ~response_size:64 ();
  let client =
    Workloads.Transactions.Client.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        Workloads.Transactions.Client.servers = [ (Host.Vm.ip b.Host.Server.vm, 9000) ];
        connections = 1;
        outstanding = 8;
        request_size = 64;
        total_requests = None;
        src_port_base = 50_000;
      }
  in
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  checkb "offloaded while hot" true (Fastrak.Rule_manager.offloaded_count rm > 0);
  Workloads.Transactions.Client.stop client;
  (* History (N*M epochs) must age out, then the DE demotes. *)
  Experiments.Testbed.run_for tb ~seconds:3.0;
  checki "demoted when idle" 0 (Fastrak.Rule_manager.offloaded_count rm)

let test_rule_manager_vm_migration () =
  let tb, a, b, rm = hot_and_cold_testbed () in
  Workloads.Transactions.Server.install ~vm:b.Host.Server.vm ~port:9000
    ~response_size:64 ();
  ignore
    (Workloads.Transactions.Client.start ~engine:tb.Experiments.Testbed.engine
       ~vm:a.Host.Server.vm
       {
         Workloads.Transactions.Client.servers = [ (Host.Vm.ip b.Host.Server.vm, 9000) ];
         connections = 1;
         outstanding = 8;
         request_size = 64;
         total_requests = None;
         src_port_base = 50_000;
       });
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  checkb "offloaded" true (Fastrak.Rule_manager.offloaded_count rm > 0);
  (* §4.1.2: before VM migration all offloaded flows return to the
     hypervisor, and the demand profile travels with the VM. *)
  let a_ip = Host.Vm.ip a.Host.Server.vm in
  let mg = Fastrak.Rule_manager.begin_vm_migration rm ~tenant ~vm_ip:a_ip in
  (* Every rule belonging to the migrating VM is back in software; the
     sink's own offloaded aggregates are untouched. *)
  checkb "vm's rules all returned" true
    (List.for_all
       (fun (p : Fkey.Pattern.t) -> p.Fkey.Pattern.src_ip <> Some a_ip)
       (Fastrak.Tor_controller.offloaded_patterns
          (Fastrak.Rule_manager.tor_controller rm)));
  (match Fastrak.Rule_manager.migration_profile mg with
  | Some p -> checkb "profile non-empty" true (Fastrak.Demand_profile.entry_count p > 0)
  | None -> Alcotest.fail "expected a demand profile");
  checkb "commit succeeds" true
    (Fastrak.Rule_manager.commit_vm_migration rm mg ~new_server:"server1")

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "fps proportional" test_fps_proportional;
    t "fps sums with overflow" test_fps_sums_to_total_plus_overflow;
    t "fps floor" test_fps_floor;
    t "fps even on no demand" test_fps_no_demand_even_split;
    t "fps maxed grows" test_fps_maxed_grows;
    t "fps unlimited" test_fps_unlimited_total;
    t "fps maxed with unlimited current" test_fps_maxed_unlimited_current;
    QCheck_alcotest.to_alcotest prop_fps_split_finite;
    t "scoring formula" test_scoring;
    t "scoring mfu not elephant" test_scoring_mfu_not_elephant;
    t "decide ranks by score" test_decide_ranks_by_score;
    t "decide respects capacity" test_decide_respects_capacity;
    t "decide min score" test_decide_min_score;
    t "decide max offloads" test_decide_max_offloads;
    t "decide demotes losers" test_decide_demotes_losers;
    t "decide keeps winners" test_decide_keeps_winners;
    t "decide demotes idle" test_decide_idle_offloaded_demoted;
    t "decide group all-or-none" test_decide_group_all_or_none;
    t "decide group of negative scores" test_decide_group_negative_scores;
    t "decide matches list baseline" test_decide_matches_list_baseline;
    t "decide with reused scratch matches baseline"
      test_decide_scratch_reuse_matches_baseline;
    t "measurement engine pps" test_me_measures_pps;
    t "measurement engine idle flows" test_me_idle_flows_dropped_from_report;
    t "measurement engine counter reset" test_me_counter_reset_clamped;
    t "demand profile update/clone" test_profile_update_and_clone;
    t "rule manager offloads hot flow" test_rule_manager_offloads_hot_flow;
    t "rule manager ignores cold flow" test_rule_manager_ignores_cold_flow;
    t "rule manager demotes idle" test_rule_manager_demotes_idle;
    t "rule manager vm migration" test_rule_manager_vm_migration;
  ]
