(* Tests for addresses, flow keys, patterns, headers and packets. *)

module Ipv4 = Netcore.Ipv4
module Fkey = Netcore.Fkey
module Packet = Netcore.Packet
module Hdr = Netcore.Hdr

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let tenant = Netcore.Tenant.of_int 7

let flow ?(src = "10.7.0.1") ?(dst = "10.7.0.2") ?(sport = 1000) ?(dport = 80)
    ?(proto = Fkey.Tcp) () =
  Fkey.make ~src_ip:(Ipv4.of_string src) ~dst_ip:(Ipv4.of_string dst)
    ~src_port:sport ~dst_port:dport ~proto ~tenant

(* --- Ipv4 --- *)

let test_ipv4_roundtrip () =
  let cases = [ "0.0.0.0"; "10.0.0.1"; "192.168.255.254"; "255.255.255.255" ] in
  List.iter
    (fun s -> check Alcotest.string s s (Ipv4.to_string (Ipv4.of_string s)))
    cases

let test_ipv4_invalid () =
  List.iter
    (fun s ->
      match Ipv4.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; "" ]

let test_ipv4_prefix () =
  let addr = Ipv4.of_string "10.1.2.3" in
  checkb "/8 yes" true (Ipv4.in_prefix addr ~prefix:(Ipv4.of_string "10.0.0.0") ~len:8);
  checkb "/24 yes" true
    (Ipv4.in_prefix addr ~prefix:(Ipv4.of_string "10.1.2.0") ~len:24);
  checkb "/24 no" false
    (Ipv4.in_prefix addr ~prefix:(Ipv4.of_string "10.1.3.0") ~len:24);
  checkb "/0 always" true
    (Ipv4.in_prefix addr ~prefix:(Ipv4.of_string "1.1.1.1") ~len:0)

let test_ipv4_offset () =
  check Alcotest.string "offset" "10.0.0.5"
    (Ipv4.to_string (Ipv4.offset (Ipv4.of_string "10.0.0.1") 4))

(* --- Mac / Tenant --- *)

let test_mac_unique () =
  let a = Netcore.Mac.vm_mac ~server:1 ~vm:1 in
  let b = Netcore.Mac.vm_mac ~server:1 ~vm:2 in
  let c = Netcore.Mac.vm_mac ~server:2 ~vm:1 in
  checkb "distinct vm" false (Netcore.Mac.equal a b);
  checkb "distinct server" false (Netcore.Mac.equal a c);
  checkb "stable" true (Netcore.Mac.equal a (Netcore.Mac.vm_mac ~server:1 ~vm:1))

let test_mac_pp () =
  let s = Format.asprintf "%a" Netcore.Mac.pp (Netcore.Mac.of_int 0x0002DEADBEEF) in
  check Alcotest.string "format" "00:02:de:ad:be:ef" s

let test_tenant_vlan () =
  checki "vlan" 7 (Netcore.Tenant.to_vlan tenant);
  Alcotest.check_raises "vlan 0 invalid"
    (Invalid_argument "Tenant.to_vlan: no VLAN allocated for this tenant id")
    (fun () -> ignore (Netcore.Tenant.to_vlan (Netcore.Tenant.of_int 0)))

let test_tenant_range () =
  (match Netcore.Tenant.of_int (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative tenant accepted");
  (* 32-bit GRE key: 2^32 - 1 is representable. *)
  ignore (Netcore.Tenant.of_int 0xFFFFFFFF)

(* --- Fkey --- *)

let test_fkey_reverse () =
  let f = flow () in
  let r = Fkey.reverse f in
  check Alcotest.string "src swapped" "10.7.0.2" (Ipv4.to_string r.Fkey.src_ip);
  checki "ports swapped" 80 r.Fkey.src_port;
  checkb "involution" true (Fkey.equal f (Fkey.reverse r))

let test_fkey_compare_total () =
  let a = flow ~sport:1 () and b = flow ~sport:2 () in
  checkb "neq" false (Fkey.equal a b);
  checki "refl" 0 (Fkey.compare a a);
  checkb "antisym" true (Fkey.compare a b = -Fkey.compare b a)

let test_fkey_table () =
  let t = Fkey.Table.create 4 in
  Fkey.Table.replace t (flow ()) 1;
  Fkey.Table.replace t (flow ~sport:2 ()) 2;
  checki "size" 2 (Fkey.Table.length t);
  checki "find" 1 (Option.get (Fkey.Table.find_opt t (flow ())))

let test_proto_rank_distinct () =
  (* Regression: the old rank encoding ([3 + n] for [Other n]) collided
     with the named protocols for n <= 0 — [Other (-1)] compared equal
     to [Icmp], [Other (-3)] to [Tcp] — merging distinct protocols in
     pattern tables. Every pair drawn from the named protocols and a
     band of [Other n] ids around zero must compare distinct. *)
  let protos =
    [ Fkey.Tcp; Fkey.Udp; Fkey.Icmp ]
    @ List.map (fun n -> Fkey.Other n) [ -3; -2; -1; 0; 1; 2; 3; 255 ]
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            checkb
              (Format.asprintf "distinct %d vs %d" i j)
              false
              (Fkey.proto_compare a b = 0))
        protos)
    protos;
  List.iter
    (fun p -> checki "refl" 0 (Fkey.proto_compare p p))
    protos

(* --- Packed flow keys --- *)

let test_packed_roundtrip_edges () =
  let mk sport dport proto tid =
    Fkey.make ~src_ip:(Ipv4.of_string "0.0.0.0")
      ~dst_ip:(Ipv4.of_string "255.255.255.255") ~src_port:sport
      ~dst_port:dport ~proto ~tenant:(Netcore.Tenant.of_int tid)
  in
  List.iter
    (fun f ->
      checkb "roundtrip" true
        (Fkey.equal f (Fkey.Packed.to_fkey (Fkey.Packed.of_fkey f))))
    [
      mk 0 0 Fkey.Tcp 1;
      mk 65535 65535 Fkey.Udp 1;
      mk 0 65535 Fkey.Icmp 0xFFFFFFFF;
      mk 65535 0 (Fkey.Other 0) 1;
      mk 1 2 (Fkey.Other (-1)) 0xFFFFFFFF;
      mk 3 4 (Fkey.Other 255) 42;
    ];
  (* Out-of-range ports are rejected rather than silently truncated. *)
  Alcotest.check_raises "port too large"
    (Invalid_argument "Fkey.Packed.of_fkey: src_port out of range") (fun () ->
      ignore (Fkey.Packed.of_fkey (mk 65536 0 Fkey.Tcp 1)))

(* --- Patterns --- *)

let test_pattern_any_matches_all () =
  checkb "any" true (Fkey.Pattern.matches Fkey.Pattern.any (flow ()));
  checki "specificity 0" 0 (Fkey.Pattern.specificity Fkey.Pattern.any)

let test_pattern_exact () =
  let f = flow () in
  let p = Fkey.Pattern.exact f in
  checkb "matches self" true (Fkey.Pattern.matches p f);
  checkb "not other" false (Fkey.Pattern.matches p (flow ~sport:9 ()));
  checki "specificity 6" 6 (Fkey.Pattern.specificity p)

let test_pattern_aggregates () =
  let f = flow () in
  let src = Fkey.Pattern.src_aggregate f in
  checkb "matches same service" true
    (Fkey.Pattern.matches src (flow ~dst:"10.7.0.9" ~dport:999 ()));
  checkb "not other source port" false
    (Fkey.Pattern.matches src (flow ~sport:1001 ()));
  let dst = Fkey.Pattern.dst_aggregate f in
  checkb "incoming aggregate" true
    (Fkey.Pattern.matches dst (flow ~src:"10.7.0.3" ~sport:555 ()));
  checki "aggregate specificity" 3 (Fkey.Pattern.specificity src)

let test_pattern_vm () =
  let f = flow () in
  checkb "from_vm" true
    (Fkey.Pattern.matches (Fkey.Pattern.from_vm f.Fkey.src_ip tenant) f);
  checkb "to_vm" true
    (Fkey.Pattern.matches (Fkey.Pattern.to_vm f.Fkey.dst_ip tenant) f)

let test_pattern_subset () =
  let f = flow () in
  let exact = Fkey.Pattern.exact f in
  let agg = Fkey.Pattern.src_aggregate f in
  checkb "exact subset of aggregate" true (Fkey.Pattern.is_subset exact ~of_:agg);
  checkb "aggregate not subset of exact" false
    (Fkey.Pattern.is_subset agg ~of_:exact);
  checkb "everything subset of any" true
    (Fkey.Pattern.is_subset agg ~of_:Fkey.Pattern.any)

(* --- Hdr --- *)

let test_hdr_segments () =
  checki "one" 1 (Hdr.segments_of ~data:100);
  checki "exact" 1 (Hdr.segments_of ~data:Hdr.max_tcp_payload);
  checki "two" 2 (Hdr.segments_of ~data:(Hdr.max_tcp_payload + 1));
  checki "32000B" 22 (Hdr.segments_of ~data:32000);
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Hdr.segments_of: data must be positive") (fun () ->
      ignore (Hdr.segments_of ~data:0))

let test_hdr_frames () =
  checkb "vxlan adds overhead" true
    (Hdr.tcp_frame_vxlan ~payload:100 > Hdr.tcp_frame ~payload:100);
  checkb "gre adds overhead" true
    (Hdr.tcp_frame_gre ~payload:100 > Hdr.tcp_frame ~payload:100);
  checki "mss" 1460 Hdr.max_tcp_payload

(* --- Packet --- *)

let test_packet_encap_stack () =
  let p = Packet.data_packet ~now:Dcsim.Simtime.zero ~flow:(flow ()) ~payload:100 in
  let base = Packet.wire_size p in
  Packet.push_encap p (Packet.Vlan 7);
  Packet.push_encap p
    (Packet.Gre { tunnel_dst = Ipv4.of_string "192.168.0.1"; key = tenant });
  checkb "encap grows wire size" true (Packet.wire_size p > base);
  (match Packet.outer_encap p with
  | Some (Packet.Gre { key; _ }) ->
      checki "outermost last pushed" 7 (Netcore.Tenant.to_int key)
  | _ -> Alcotest.fail "expected GRE outermost");
  (match Packet.pop_encap p with
  | Some (Packet.Gre _) -> ()
  | _ -> Alcotest.fail "pop order");
  (match Packet.pop_encap p with
  | Some (Packet.Vlan 7) -> ()
  | _ -> Alcotest.fail "vlan next");
  checkb "empty" true (Packet.pop_encap p = None);
  checki "back to base" base (Packet.wire_size p)

let test_packet_vlan_of () =
  let p = Packet.data_packet ~now:Dcsim.Simtime.zero ~flow:(flow ()) ~payload:1 in
  checkb "no vlan" true (Packet.vlan_of p = None);
  Packet.push_encap p (Packet.Vlan 42);
  checki "vlan" 42 (Option.get (Packet.vlan_of p))

let test_packet_uids () =
  Packet.reset_uid_counter ();
  let a = Packet.data_packet ~now:Dcsim.Simtime.zero ~flow:(flow ()) ~payload:1 in
  let b = Packet.data_packet ~now:Dcsim.Simtime.zero ~flow:(flow ()) ~payload:1 in
  checkb "unique" true (a.Packet.uid <> b.Packet.uid)

(* --- Properties --- *)

let gen_flow =
  QCheck2.Gen.(
    let* a = int_range 0 255 and* b = int_range 0 255 in
    let* c = int_range 0 255 and* d = int_range 0 255 in
    let* sport = int_range 0 65535 and* dport = int_range 0 65535 in
    let* proto = oneofl [ Fkey.Tcp; Fkey.Udp; Fkey.Icmp ] in
    return
      (Fkey.make
         ~src_ip:(Ipv4.of_octets a b c d)
         ~dst_ip:(Ipv4.of_octets d c b a)
         ~src_port:sport ~dst_port:dport ~proto ~tenant))

let prop_reverse_involution =
  QCheck2.Test.make ~name:"fkey reverse is an involution" ~count:300 gen_flow
    (fun f -> Fkey.equal f (Fkey.reverse (Fkey.reverse f)))

let prop_exact_pattern_matches =
  QCheck2.Test.make ~name:"exact pattern matches its flow" ~count:300 gen_flow
    (fun f -> Fkey.Pattern.matches (Fkey.Pattern.exact f) f)

let prop_aggregate_covers_exact =
  QCheck2.Test.make ~name:"src aggregate covers the flow" ~count:300 gen_flow
    (fun f ->
      Fkey.Pattern.matches (Fkey.Pattern.src_aggregate f) f
      && Fkey.Pattern.is_subset (Fkey.Pattern.exact f)
           ~of_:(Fkey.Pattern.src_aggregate f))

let prop_hash_consistent =
  QCheck2.Test.make ~name:"equal flows hash equally" ~count:300 gen_flow
    (fun f ->
      let copy = Fkey.make ~src_ip:f.Fkey.src_ip ~dst_ip:f.Fkey.dst_ip
          ~src_port:f.Fkey.src_port ~dst_port:f.Fkey.dst_port
          ~proto:f.Fkey.proto ~tenant:f.Fkey.tenant in
      Fkey.hash f = Fkey.hash copy)

(* Full-domain flows for packed-key properties: ports hit 0/65535,
   protocols include [Other n] (negative ids too), tenants span the
   whole 32-bit GRE-key range. *)
let gen_flow_packed =
  QCheck2.Gen.(
    let* a = int_range 0 255 and* b = int_range 0 255 in
    let* sport = oneof [ int_range 0 65535; oneofl [ 0; 65535 ] ] in
    let* dport = oneof [ int_range 0 65535; oneofl [ 0; 65535 ] ] in
    let* proto =
      oneof
        [
          oneofl [ Fkey.Tcp; Fkey.Udp; Fkey.Icmp ];
          map (fun n -> Fkey.Other n) (int_range (-8) 300);
        ]
    in
    let* tid = oneofl [ 0; 1; 7; 4094; 0xFFFF; 0xFFFFFFFF ] in
    return
      (Fkey.make
         ~src_ip:(Ipv4.of_octets a 0 0 b)
         ~dst_ip:(Ipv4.of_octets b 255 1 a)
         ~src_port:sport ~dst_port:dport ~proto
         ~tenant:(Netcore.Tenant.of_int tid)))

let prop_packed_roundtrip =
  QCheck2.Test.make ~name:"packed key roundtrips through of_fkey/to_fkey"
    ~count:500 gen_flow_packed (fun f ->
      Fkey.equal f (Fkey.Packed.to_fkey (Fkey.Packed.of_fkey f)))

(* A tiny flow domain so randomly drawn pairs are frequently equal —
   the property is vacuous if the two sides never collide. *)
let gen_flow_small =
  QCheck2.Gen.(
    let* s = int_range 0 1 and* d = int_range 0 1 in
    let* sport = int_range 0 1 and* dport = int_range 0 1 in
    let* proto = oneofl [ Fkey.Tcp; Fkey.Other 0 ] in
    return
      (Fkey.make
         ~src_ip:(Ipv4.of_octets 10 0 0 s)
         ~dst_ip:(Ipv4.of_octets 10 0 0 d)
         ~src_port:sport ~dst_port:dport ~proto ~tenant))

let prop_packed_agrees_with_boxed =
  QCheck2.Test.make ~name:"packed equal/hash agree with boxed keys" ~count:500
    QCheck2.Gen.(pair gen_flow_small gen_flow_small)
    (fun (a, b) ->
      let pa = Fkey.Packed.of_fkey a and pb = Fkey.Packed.of_fkey b in
      Fkey.Packed.equal pa pb = Fkey.equal a b
      && (not (Fkey.equal a b)
         || Fkey.Packed.hash pa = Fkey.Packed.hash pb
            && Fkey.hash a = Fkey.hash b))

let prop_ipv4_roundtrip =
  QCheck2.Test.make ~name:"ipv4 string roundtrip" ~count:300
    QCheck2.Gen.(quad (int_range 0 255) (int_range 0 255) (int_range 0 255)
                   (int_range 0 255))
    (fun (a, b, c, d) ->
      let ip = Ipv4.of_octets a b c d in
      Ipv4.equal ip (Ipv4.of_string (Ipv4.to_string ip)))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "ipv4 roundtrip" test_ipv4_roundtrip;
    t "ipv4 invalid" test_ipv4_invalid;
    t "ipv4 prefix" test_ipv4_prefix;
    t "ipv4 offset" test_ipv4_offset;
    t "mac uniqueness" test_mac_unique;
    t "mac formatting" test_mac_pp;
    t "tenant vlan" test_tenant_vlan;
    t "tenant range" test_tenant_range;
    t "fkey reverse" test_fkey_reverse;
    t "fkey compare total" test_fkey_compare_total;
    t "fkey table" test_fkey_table;
    t "proto ranks pairwise distinct" test_proto_rank_distinct;
    t "packed roundtrip at edges" test_packed_roundtrip_edges;
    t "pattern any" test_pattern_any_matches_all;
    t "pattern exact" test_pattern_exact;
    t "pattern aggregates" test_pattern_aggregates;
    t "pattern vm" test_pattern_vm;
    t "pattern subset" test_pattern_subset;
    t "hdr segments" test_hdr_segments;
    t "hdr frames" test_hdr_frames;
    t "packet encap stack" test_packet_encap_stack;
    t "packet vlan_of" test_packet_vlan_of;
    t "packet uids" test_packet_uids;
    QCheck_alcotest.to_alcotest prop_reverse_involution;
    QCheck_alcotest.to_alcotest prop_exact_pattern_matches;
    QCheck_alcotest.to_alcotest prop_aggregate_covers_exact;
    QCheck_alcotest.to_alcotest prop_hash_consistent;
    QCheck_alcotest.to_alcotest prop_packed_roundtrip;
    QCheck_alcotest.to_alcotest prop_packed_agrees_with_boxed;
    QCheck_alcotest.to_alcotest prop_ipv4_roundtrip;
  ]
