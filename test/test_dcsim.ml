(* Unit and property tests for the discrete-event simulation core. *)

module Simtime = Dcsim.Simtime
module Engine = Dcsim.Engine

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Simtime --- *)

let test_time_conversions () =
  checki "us" 1_500 (Simtime.to_ns (Simtime.of_us 1.5));
  checki "ms" 2_000_000 (Simtime.to_ns (Simtime.of_ms 2.0));
  checki "sec" 3_000_000_000 (Simtime.to_ns (Simtime.of_sec 3.0));
  check (Alcotest.float 1e-9) "roundtrip sec" 1.25
    (Simtime.to_sec (Simtime.of_sec 1.25))

let test_time_arithmetic () =
  let t = Simtime.of_us 10.0 in
  let t2 = Simtime.add t (Simtime.span_us 5.0) in
  checki "add" 15_000 (Simtime.to_ns t2);
  checki "diff" 5_000 (Simtime.span_to_ns (Simtime.diff t2 t));
  checkb "lt" true Simtime.(t < t2);
  checkb "ge" true Simtime.(t2 >= t)

let test_span_ops () =
  let a = Simtime.span_us 2.0 and b = Simtime.span_us 3.0 in
  checki "add" 5_000 (Simtime.span_to_ns (Simtime.span_add a b));
  checki "sub" 1_000 (Simtime.span_to_ns (Simtime.span_sub b a));
  checki "scale" 4_000 (Simtime.span_to_ns (Simtime.span_scale 2.0 a));
  checki "max" 3_000 (Simtime.span_to_ns (Simtime.span_max a b))

let test_serialization_delay () =
  (* 1500 bytes at 10 Gb/s = 1.2 us. *)
  checki "1500B@10G" 1_200
    (Simtime.span_to_ns (Simtime.span_of_bytes_at_rate ~bytes_len:1500 ~gbps:10.0));
  checki "64B@1G" 512
    (Simtime.span_to_ns (Simtime.span_of_bytes_at_rate ~bytes_len:64 ~gbps:1.0))

(* --- Event queue --- *)

let test_queue_ordering () =
  let q = Dcsim.Event_queue.create () in
  ignore (Dcsim.Event_queue.push q (Simtime.of_ns 30) "c");
  ignore (Dcsim.Event_queue.push q (Simtime.of_ns 10) "a");
  ignore (Dcsim.Event_queue.push q (Simtime.of_ns 20) "b");
  let pop () =
    match Dcsim.Event_queue.pop q with Some (_, v) -> v | None -> "-"
  in
  check Alcotest.string "first" "a" (pop ());
  check Alcotest.string "second" "b" (pop ());
  check Alcotest.string "third" "c" (pop ());
  checkb "empty" true (Dcsim.Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Dcsim.Event_queue.create () in
  let t = Simtime.of_ns 5 in
  ignore (Dcsim.Event_queue.push q t 1);
  ignore (Dcsim.Event_queue.push q t 2);
  ignore (Dcsim.Event_queue.push q t 3);
  let order =
    List.init 3 (fun _ ->
        match Dcsim.Event_queue.pop q with Some (_, v) -> v | None -> -1)
  in
  check (Alcotest.list Alcotest.int) "scheduling order" [ 1; 2; 3 ] order

let test_queue_cancel () =
  let q = Dcsim.Event_queue.create () in
  let h1 = Dcsim.Event_queue.push q (Simtime.of_ns 1) 1 in
  ignore (Dcsim.Event_queue.push q (Simtime.of_ns 2) 2);
  checkb "cancel ok" true (Dcsim.Event_queue.cancel q h1);
  checkb "double cancel" false (Dcsim.Event_queue.cancel q h1);
  checki "length" 1 (Dcsim.Event_queue.length q);
  (match Dcsim.Event_queue.pop q with
  | Some (_, v) -> checki "survivor" 2 v
  | None -> Alcotest.fail "expected one event");
  checkb "drained" true (Dcsim.Event_queue.pop q = None)

let test_queue_peek_skips_cancelled () =
  let q = Dcsim.Event_queue.create () in
  let h = Dcsim.Event_queue.push q (Simtime.of_ns 1) 1 in
  ignore (Dcsim.Event_queue.push q (Simtime.of_ns 7) 2);
  ignore (Dcsim.Event_queue.cancel q h);
  (match Dcsim.Event_queue.peek_time q with
  | Some t -> checki "peek" 7 (Simtime.to_ns t)
  | None -> Alcotest.fail "expected peek");
  ()

let test_queue_cancel_after_pop () =
  (* Regression: cancelling a handle whose event already fired must be
     a no-op — it used to return true and corrupt [length]. *)
  let q = Dcsim.Event_queue.create () in
  let h1 = Dcsim.Event_queue.push q (Simtime.of_ns 1) 1 in
  ignore (Dcsim.Event_queue.push q (Simtime.of_ns 2) 2);
  (match Dcsim.Event_queue.pop q with
  | Some (_, v) -> checki "popped first" 1 v
  | None -> Alcotest.fail "expected an event");
  checkb "cancel after fire is a no-op" false (Dcsim.Event_queue.cancel q h1);
  checki "length uncorrupted" 1 (Dcsim.Event_queue.length q);
  checkb "not empty" false (Dcsim.Event_queue.is_empty q);
  (* Cancel-then-pop-then-cancel: the lazily-discarded entry must not
     be cancellable a second time either. *)
  let h2 = Dcsim.Event_queue.push q (Simtime.of_ns 1) 3 in
  checkb "cancel live" true (Dcsim.Event_queue.cancel q h2);
  (match Dcsim.Event_queue.pop q with
  | Some (_, v) -> checki "skips cancelled" 2 v
  | None -> Alcotest.fail "expected survivor");
  checkb "cancel after lazy discard" false (Dcsim.Event_queue.cancel q h2);
  checki "drained" 0 (Dcsim.Event_queue.length q);
  checkb "pop on empty" true (Dcsim.Event_queue.pop q = None)

let test_queue_compaction () =
  (* Mass cancellation triggers heap compaction; ordering and length
     must survive it. *)
  let q = Dcsim.Event_queue.create () in
  let handles =
    List.init 10_000 (fun i -> (i, Dcsim.Event_queue.push q (Simtime.of_ns i) i))
  in
  List.iter
    (fun (i, h) ->
      if i mod 1000 <> 0 then checkb "cancel" true (Dcsim.Event_queue.cancel q h))
    handles;
  checki "live survivors" 10 (Dcsim.Event_queue.length q);
  let rec drain acc =
    match Dcsim.Event_queue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.check (Alcotest.list Alcotest.int) "survivors in order"
    [ 0; 1000; 2000; 3000; 4000; 5000; 6000; 7000; 8000; 9000 ]
    (drain [])

(* --- Ring --- *)

let test_ring_basics () =
  let r = Dcsim.Ring.create ~capacity:3 in
  checkb "empty" true (Dcsim.Ring.is_empty r);
  checkb "no latest" true (Dcsim.Ring.latest r = None);
  Dcsim.Ring.push r 1.0;
  Dcsim.Ring.push r 2.0;
  checki "len" 2 (Dcsim.Ring.length r);
  checkb "latest" true (Dcsim.Ring.latest r = Some 2.0);
  Dcsim.Ring.push r 3.0;
  Dcsim.Ring.push r 4.0;
  (* Capacity 3: the 1.0 fell off. *)
  checki "capped" 3 (Dcsim.Ring.length r);
  checkb "latest after wrap" true (Dcsim.Ring.latest r = Some 4.0);
  check (Alcotest.float 0.0) "fold oldest-first" 9.0
    (Dcsim.Ring.fold ( +. ) 0.0 r);
  checki "count" 2 (Dcsim.Ring.count (fun x -> x > 2.5) r);
  let scratch = Array.make 3 0.0 in
  let n = Dcsim.Ring.filter_into (fun x -> x > 2.5) r scratch in
  checki "filtered" 2 n;
  check (Alcotest.float 0.0) "median of filtered" 3.5
    (Dcsim.Stats.median_in_place scratch n)

let test_median_in_place () =
  let a = [| 5.0; 1.0; 3.0; 0.0; 0.0 |] in
  check (Alcotest.float 0.0) "prefix median" 3.0 (Dcsim.Stats.median_in_place a 3);
  check (Alcotest.float 0.0) "empty" 0.0
    (Dcsim.Stats.median_in_place [| 1.0 |] 0)

(* --- Engine --- *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.at e (Simtime.of_us 3.0) (fun () -> log := 3 :: !log));
  ignore (Engine.at e (Simtime.of_us 1.0) (fun () -> log := 1 :: !log));
  ignore (Engine.at e (Simtime.of_us 2.0) (fun () -> log := 2 :: !log));
  Engine.run e;
  check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !log);
  checki "clock" 3_000 (Simtime.to_ns (Engine.now e));
  checki "processed" 3 (Engine.events_processed e)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.at e (Simtime.of_us 1.0) (fun () -> incr fired));
  ignore (Engine.at e (Simtime.of_us 10.0) (fun () -> incr fired));
  Engine.run ~until:(Simtime.of_us 5.0) e;
  checki "only first" 1 !fired;
  checki "clock at limit" 5_000 (Simtime.to_ns (Engine.now e));
  Engine.run e;
  checki "rest" 2 !fired

let test_engine_after_and_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.after e (Simtime.span_us 2.0) (fun () -> fired := true) in
  checkb "cancel" true (Engine.cancel e h);
  Engine.run e;
  checkb "not fired" false !fired

let test_engine_rejects_past () =
  let e = Engine.create () in
  ignore (Engine.at e (Simtime.of_us 5.0) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past schedule"
    (Invalid_argument "Engine.at: 1.0us is before current time 5.0us")
    (fun () -> ignore (Engine.at e (Simtime.of_us 1.0) (fun () -> ())))

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e (Simtime.span_us 10.0) (fun () ->
      incr count;
      if !count >= 4 then `Stop else `Continue);
  Engine.run e;
  checki "four ticks" 4 !count;
  checki "stopped at" 40_000 (Simtime.to_ns (Engine.now e))

(* Regression: a periodic task kicked off from inside an event with
   [~start] at (or before) the current instant must begin now, not
   raise for scheduling in the past. *)
let test_engine_every_past_start_clamps () =
  let e = Engine.create () in
  let fire_times = ref [] in
  ignore
    (Engine.at e (Simtime.of_us 5.0) (fun () ->
         Engine.every e ~start:Simtime.zero (Simtime.span_us 10.0) (fun () ->
             fire_times := Simtime.to_ns (Engine.now e) :: !fire_times;
             if List.length !fire_times >= 3 then `Stop else `Continue)));
  Engine.run e;
  Alcotest.check (Alcotest.list Alcotest.int) "clamped to now, then periodic"
    [ 5_000; 15_000; 25_000 ]
    (List.rev !fire_times)

let test_engine_stop () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore
    (Engine.at e (Simtime.of_us 1.0) (fun () ->
         incr fired;
         Engine.stop e));
  ignore (Engine.at e (Simtime.of_us 2.0) (fun () -> incr fired));
  Engine.run e;
  checki "stopped early" 1 !fired

(* --- Rng --- *)

let test_rng_determinism () =
  let draw seed =
    let r = Dcsim.Rng.create ~seed in
    List.init 10 (fun _ -> Dcsim.Rng.int r 1000)
  in
  check (Alcotest.list Alcotest.int) "same seed same stream" (draw 7) (draw 7);
  checkb "different seeds differ" true (draw 7 <> draw 8)

let test_rng_split_stable () =
  let r1 = Dcsim.Rng.create ~seed:1 in
  let r2 = Dcsim.Rng.create ~seed:1 in
  let a = Dcsim.Rng.split r1 "x" and b = Dcsim.Rng.split r2 "x" in
  checki "split streams agree" (Dcsim.Rng.int a 1_000_000) (Dcsim.Rng.int b 1_000_000)

let test_rng_distributions () =
  let r = Dcsim.Rng.create ~seed:3 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dcsim.Rng.exponential r ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "exponential mean ~5" true (Float.abs (mean -. 5.0) < 0.3);
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dcsim.Rng.gaussian r ~mu:2.0 ~sigma:1.0
  done;
  checkb "gaussian mean ~2" true (Float.abs ((!sum /. float_of_int n) -. 2.0) < 0.1)

(* --- Stats --- *)

let test_summary () =
  let s = Dcsim.Stats.Summary.create () in
  List.iter (Dcsim.Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  checki "count" 4 (Dcsim.Stats.Summary.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Dcsim.Stats.Summary.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Dcsim.Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Dcsim.Stats.Summary.max s);
  check (Alcotest.float 1e-6) "variance" (5.0 /. 3.0)
    (Dcsim.Stats.Summary.variance s)

let test_summary_empty () =
  let s = Dcsim.Stats.Summary.create () in
  check (Alcotest.float 0.0) "mean empty" 0.0 (Dcsim.Stats.Summary.mean s);
  check (Alcotest.float 0.0) "stddev empty" 0.0 (Dcsim.Stats.Summary.stddev s);
  (* No observations: min/max are nan ("no data"), not a fabricated 0
     that a dashboard would read as a real measurement. *)
  checkb "min empty is nan" true (Float.is_nan (Dcsim.Stats.Summary.min s));
  checkb "max empty is nan" true (Float.is_nan (Dcsim.Stats.Summary.max s));
  Dcsim.Stats.Summary.add s 3.0;
  check (Alcotest.float 0.0) "min after add" 3.0 (Dcsim.Stats.Summary.min s);
  Dcsim.Stats.Summary.clear s;
  checkb "cleared min is nan again" true
    (Float.is_nan (Dcsim.Stats.Summary.min s))

let test_histogram_percentiles () =
  let h = Dcsim.Stats.Histogram.create () in
  for i = 1 to 1000 do
    Dcsim.Stats.Histogram.add h (float_of_int i)
  done;
  let p50 = Dcsim.Stats.Histogram.percentile h 50.0 in
  let p99 = Dcsim.Stats.Histogram.percentile h 99.0 in
  checkb "p50 near 500" true (Float.abs (p50 -. 500.0) < 15.0);
  checkb "p99 near 990" true (Float.abs (p99 -. 990.0) < 25.0);
  checkb "p99 >= p50" true (p99 >= p50);
  check (Alcotest.float 2.0) "mean" 500.5 (Dcsim.Stats.Histogram.mean h)

let test_histogram_large_values () =
  let h = Dcsim.Stats.Histogram.create () in
  Dcsim.Stats.Histogram.add h 1.0e6;
  Dcsim.Stats.Histogram.add h 2.0e6;
  let p99 = Dcsim.Stats.Histogram.percentile h 99.0 in
  (* Geometric buckets: bounded relative error. *)
  checkb "tail relative error" true (Float.abs (p99 -. 2.0e6) /. 2.0e6 < 0.05)

let test_median () =
  check (Alcotest.float 0.0) "odd" 3.0 (Dcsim.Stats.median [ 5.0; 1.0; 3.0 ]);
  check (Alcotest.float 0.0) "even" 2.5 (Dcsim.Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 0.0) "empty" 0.0 (Dcsim.Stats.median [])

let test_rate () =
  let r = Dcsim.Stats.Rate.create () in
  Dcsim.Stats.Rate.observe r ~now:Simtime.zero ~count:10 ~bytes_len:1000;
  let pps, bps = Dcsim.Stats.Rate.sample r ~now:(Simtime.of_sec 2.0) in
  check (Alcotest.float 1e-6) "pps" 5.0 pps;
  check (Alcotest.float 1e-6) "Bps" 500.0 bps;
  (* Window resets. *)
  let pps, _ = Dcsim.Stats.Rate.sample r ~now:(Simtime.of_sec 3.0) in
  check (Alcotest.float 1e-6) "reset" 0.0 pps

let test_timeseries () =
  let ts = Dcsim.Stats.Timeseries.create "x" in
  Dcsim.Stats.Timeseries.add ts Simtime.zero 1.0;
  Dcsim.Stats.Timeseries.add ts (Simtime.of_us 1.0) 2.0;
  checki "len" 2 (Dcsim.Stats.Timeseries.length ts);
  check Alcotest.string "name" "x" (Dcsim.Stats.Timeseries.name ts);
  (match Dcsim.Stats.Timeseries.points ts with
  | [ (_, a); (_, b) ] ->
      check (Alcotest.float 0.0) "first" 1.0 a;
      check (Alcotest.float 0.0) "second" 2.0 b
  | _ -> Alcotest.fail "expected two points")

(* --- Queueing formulas --- *)

let test_mm1 () =
  (* rho = 0.5: W = 1/(mu - lambda) = 1/50 = 0.02 s. *)
  check (Alcotest.float 1e-9) "mm1" 0.02
    (Dcsim.Queueing.mm1_wait ~arrival_rate:50.0 ~service_rate:100.0);
  checkb "unstable" true
    (Dcsim.Queueing.mm1_wait ~arrival_rate:100.0 ~service_rate:100.0 = infinity)

let test_md1_below_mm1 () =
  let md1 = Dcsim.Queueing.md1_wait ~arrival_rate:80.0 ~service_rate:100.0 in
  let mm1 = Dcsim.Queueing.mm1_wait ~arrival_rate:80.0 ~service_rate:100.0 in
  checkb "deterministic service waits less" true (md1 < mm1);
  checkb "md1 above service time" true (md1 > 0.01)

let test_mmc () =
  (* M/M/1 equals M/M/c with c=1. *)
  let a = Dcsim.Queueing.mm1_wait ~arrival_rate:30.0 ~service_rate:100.0 in
  let b = Dcsim.Queueing.mmc_wait ~arrival_rate:30.0 ~service_rate:100.0 ~servers:1 in
  check (Alcotest.float 1e-9) "c=1 match" a b;
  (* More servers, less waiting. *)
  let c2 = Dcsim.Queueing.mmc_wait ~arrival_rate:150.0 ~service_rate:100.0 ~servers:2 in
  let c4 = Dcsim.Queueing.mmc_wait ~arrival_rate:150.0 ~service_rate:100.0 ~servers:4 in
  checkb "more servers faster" true (c4 < c2)

let test_littles_law () =
  check (Alcotest.float 1e-9) "L = lambda W" 6.0
    (Dcsim.Queueing.littles_law_occupancy ~arrival_rate:30.0 ~time_in_system:0.2)

(* --- Property tests --- *)

let prop_event_queue_sorted =
  QCheck2.Test.make ~name:"event queue pops in time order" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 1_000_000))
    (fun times ->
      let q = Dcsim.Event_queue.create () in
      List.iter (fun t -> ignore (Dcsim.Event_queue.push q (Simtime.of_ns t) t)) times;
      let rec drain acc =
        match Dcsim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times
      || (* stable for duplicates in push order: compare as multiset+sorted *)
      List.sort compare popped = List.sort compare times
      && List.for_all2 ( <= )
           (List.filteri (fun i _ -> i < List.length popped - 1) popped)
           (List.tl popped))

let prop_event_queue_length_under_churn =
  (* Random interleavings of push / cancel / pop (including cancels of
     handles that already fired): [length] must always equal the number
     of live events — the invariant the cancel-after-pop bug broke. *)
  QCheck2.Test.make ~name:"event queue length consistent under churn" ~count:200
    QCheck2.Gen.(list_size (int_range 1 200) (pair (int_range 0 1000) (int_range 0 99)))
    (fun ops ->
      let q = Dcsim.Event_queue.create () in
      let handles = ref [] in
      let live = ref 0 in
      List.iter
        (fun (t, action) ->
          if action < 55 then begin
            handles := Dcsim.Event_queue.push q (Simtime.of_ns t) t :: !handles;
            incr live
          end
          else if action < 85 then begin
            match !handles with
            | [] -> ()
            | h :: rest ->
                handles := rest;
                if Dcsim.Event_queue.cancel q h then decr live
          end
          else begin
            match Dcsim.Event_queue.pop q with
            | Some _ -> decr live
            | None -> ()
          end)
        ops;
      let consistent = Dcsim.Event_queue.length q = !live in
      let rec drain n =
        match Dcsim.Event_queue.pop q with None -> n | Some _ -> drain (n + 1)
      in
      consistent && drain 0 = !live)

let prop_histogram_percentile_monotone =
  QCheck2.Test.make ~name:"histogram percentiles are monotone" ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (float_bound_exclusive 100000.0))
    (fun values ->
      let h = Dcsim.Stats.Histogram.create () in
      List.iter (Dcsim.Stats.Histogram.add h) values;
      let ps = [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
      let vs = List.map (Dcsim.Stats.Histogram.percentile h) ps in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone vs)

let prop_summary_mean_bounds =
  QCheck2.Test.make ~name:"summary mean within min/max" ~count:200
    QCheck2.Gen.(list_size (int_range 1 100) (float_bound_exclusive 1000.0))
    (fun values ->
      let s = Dcsim.Stats.Summary.create () in
      List.iter (Dcsim.Stats.Summary.add s) values;
      let m = Dcsim.Stats.Summary.mean s in
      m >= Dcsim.Stats.Summary.min s -. 1e-9
      && m <= Dcsim.Stats.Summary.max s +. 1e-9)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "simtime conversions" test_time_conversions;
    t "simtime arithmetic" test_time_arithmetic;
    t "span operations" test_span_ops;
    t "serialization delay" test_serialization_delay;
    t "event queue ordering" test_queue_ordering;
    t "event queue fifo ties" test_queue_fifo_ties;
    t "event queue cancel" test_queue_cancel;
    t "event queue cancel after pop" test_queue_cancel_after_pop;
    t "event queue compaction" test_queue_compaction;
    t "event queue peek skips cancelled" test_queue_peek_skips_cancelled;
    t "ring buffer basics" test_ring_basics;
    t "median in place" test_median_in_place;
    t "engine runs in order" test_engine_runs_in_order;
    t "engine until" test_engine_until;
    t "engine after/cancel" test_engine_after_and_cancel;
    t "engine rejects past" test_engine_rejects_past;
    t "engine every" test_engine_every;
    t "engine every past start clamps" test_engine_every_past_start_clamps;
    t "engine stop" test_engine_stop;
    t "rng determinism" test_rng_determinism;
    t "rng split stable" test_rng_split_stable;
    t "rng distribution means" test_rng_distributions;
    t "summary statistics" test_summary;
    t "summary empty" test_summary_empty;
    t "histogram percentiles" test_histogram_percentiles;
    t "histogram tail error" test_histogram_large_values;
    t "median" test_median;
    t "rate estimator" test_rate;
    t "timeseries" test_timeseries;
    t "mm1 wait" test_mm1;
    t "md1 below mm1" test_md1_below_mm1;
    t "mmc wait" test_mmc;
    t "littles law" test_littles_law;
    QCheck_alcotest.to_alcotest prop_event_queue_sorted;
    QCheck_alcotest.to_alcotest prop_event_queue_length_under_churn;
    QCheck_alcotest.to_alcotest prop_histogram_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_summary_mean_bounds;
  ]
