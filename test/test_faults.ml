(* Tests for the fault-injection subsystem (lib/faults), the unreliable
   channel mode, and the control plane's resilience under faults: the
   ack/retry protocol, dead-peer demotion, reconciliation after random
   fault schedules, and the VM-migration abort path. *)

module Simtime = Dcsim.Simtime
module Engine = Dcsim.Engine
module Rng = Dcsim.Rng
module Fkey = Netcore.Fkey
module Schedule = Faults.Schedule
module Injector = Faults.Injector

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let tenant = Netcore.Tenant.of_int 7

(* --- Schedule syntax --- *)

let test_schedule_parse () =
  match Schedule.of_string "drop=0.1,dup=0.05,jitter_us=250,down=1:2,dropnext=0.5:3" with
  | Error e -> Alcotest.fail e
  | Ok s ->
      checkb "drop" true (s.Schedule.drop = 0.1);
      checkb "dup" true (s.Schedule.duplicate = 0.05);
      checkb "jitter" true (Simtime.span_to_us s.Schedule.jitter = 250.0);
      checki "windows" 1 (List.length s.Schedule.windows);
      checki "triggers" 1 (List.length s.Schedule.triggers);
      checkb "not none" true (not (Schedule.is_none s))

let test_schedule_rejects () =
  let bad spec = checkb spec true (Result.is_error (Schedule.of_string spec)) in
  bad "drop=2";
  bad "drop=-0.1";
  bad "nonsense";
  bad "martian=1";
  bad "down=2:1";
  bad "dropnext=1:0"

let test_schedule_roundtrip () =
  List.iter
    (fun spec ->
      match Schedule.of_string spec with
      | Error e -> Alcotest.fail e
      | Ok s -> (
          let rendered = Schedule.to_string s in
          match Schedule.of_string rendered with
          | Error e -> Alcotest.fail e
          | Ok s' -> checks spec rendered (Schedule.to_string s')))
    [
      "drop=0.1";
      "drop=0.05,dup=0.01,reorder=0.02,jitter_us=200";
      "drop=0.1,down=1:1.3,dropnext=0.5:3";
    ];
  checks "none renders" "none" (Schedule.to_string Schedule.none)

(* Property: to_string is a fixpoint under of_string for any schedule —
   whatever combination of dimensions is set, the canonical rendering
   re-parses to a schedule that renders identically. Values are drawn
   from a Dcsim.Rng stream so each case is a pure function of its
   QCheck seed; millisecond/percent granularity keeps the printed
   floats exact. *)
let prop_schedule_roundtrip =
  let schedule_of_seed seed =
    let rng = Rng.create ~seed in
    let pct () = float_of_int (Rng.int rng 101) /. 100.0 in
    let windows =
      List.init (Rng.int rng 3) (fun _ ->
          let from_s = float_of_int (Rng.int rng 2000) /. 1000.0 in
          let width = float_of_int (1 + Rng.int rng 2000) /. 1000.0 in
          {
            Schedule.down_from = Simtime.of_sec from_s;
            down_until = Simtime.of_sec (from_s +. width);
          })
    in
    let triggers =
      List.init (Rng.int rng 3) (fun _ ->
          {
            Schedule.fire_at =
              Simtime.of_sec (float_of_int (Rng.int rng 3000) /. 1000.0);
            drop_next = 1 + Rng.int rng 9;
          })
    in
    {
      (* At least 1% drop so the schedule is never [none] — "none"
         is profile vocabulary, not of_string syntax. *)
      Schedule.drop = float_of_int (1 + Rng.int rng 100) /. 100.0;
      duplicate = pct ();
      reorder = pct ();
      jitter = Simtime.span_us (float_of_int (Rng.int rng 1000));
      windows;
      triggers;
      tcam_install_fail = pct ();
      tcam_soft_error = pct ();
    }
  in
  QCheck.Test.make ~count:100 ~name:"schedule to_string/of_string round-trip"
    (QCheck.int_range 0 100_000)
    (fun seed ->
      let s = schedule_of_seed seed in
      let rendered = Schedule.to_string s in
      match Schedule.of_string rendered with
      | Error e -> QCheck.Test.fail_reportf "%S failed to re-parse: %s" rendered e
      | Ok s' ->
          let rerendered = Schedule.to_string s' in
          if rerendered <> rendered then
            QCheck.Test.fail_reportf "not a fixpoint: %S re-rendered as %S"
              rendered rerendered;
          true)

let test_schedule_profiles () =
  checkb "none is none" true
    (match Schedule.profile "none" with Ok s -> Schedule.is_none s | Error _ -> false);
  List.iter
    (fun name ->
      checkb name true
        (match Schedule.profile name with
        | Ok s -> not (Schedule.is_none s)
        | Error _ -> false))
    [ "lossy"; "chaos"; "smoke" ];
  (* Unknown names fall through to the spec parser. *)
  checkb "spec fallthrough" true (Result.is_ok (Schedule.profile "drop=0.5"));
  checkb "garbage rejected" true (Result.is_error (Schedule.profile "martian"))

(* --- Injector draws --- *)

let verdict_tag = function
  | Injector.Drop -> "drop"
  | Injector.Deliver { extra_delay; in_order; duplicate_delay } ->
      Printf.sprintf "deliver(%d,%b,%s)"
        (Simtime.span_to_ns extra_delay)
        in_order
        (match duplicate_delay with
        | None -> "-"
        | Some d -> string_of_int (Simtime.span_to_ns d))

let test_injector_deterministic () =
  let draw_sequence () =
    let inj =
      Injector.create
        ~schedule:(Schedule.lossy ())
        ~rng:(Rng.create ~seed:99)
    in
    List.map
      (fun i -> verdict_tag (Injector.decide inj ~now:(Simtime.of_sec (float_of_int i))))
      (List.init 50 Fun.id)
  in
  checkb "same seed, same faults" true (draw_sequence () = draw_sequence ())

let test_injector_window () =
  let sched =
    match Schedule.of_string "down=1:2" with Ok s -> s | Error e -> Alcotest.fail e
  in
  let inj = Injector.create ~schedule:sched ~rng:(Rng.create ~seed:1) in
  checkb "before window" true
    (Injector.decide inj ~now:(Simtime.of_sec 0.5) <> Injector.Drop);
  checkb "inside window" true
    (Injector.decide inj ~now:(Simtime.of_sec 1.5) = Injector.Drop);
  checkb "after window" true
    (Injector.decide inj ~now:(Simtime.of_sec 2.5) <> Injector.Drop);
  checki "drops counted" 1 (Injector.drops inj)

let test_injector_trigger () =
  let sched =
    match Schedule.of_string "dropnext=1:2" with Ok s -> s | Error e -> Alcotest.fail e
  in
  let inj = Injector.create ~schedule:sched ~rng:(Rng.create ~seed:1) in
  checkb "before trigger" true
    (Injector.decide inj ~now:(Simtime.of_sec 0.5) <> Injector.Drop);
  checkb "armed 1st" true (Injector.decide inj ~now:(Simtime.of_sec 1.1) = Injector.Drop);
  checkb "armed 2nd" true (Injector.decide inj ~now:(Simtime.of_sec 1.2) = Injector.Drop);
  checkb "exhausted" true (Injector.decide inj ~now:(Simtime.of_sec 1.3) <> Injector.Drop)

(* --- Channel unreliable mode --- *)

let lossy_channel ~schedule_spec ~seed =
  let engine = Engine.create ~seed () in
  let sched =
    match Schedule.of_string schedule_spec with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let inj = Injector.create ~schedule:sched ~rng:(Rng.create ~seed) in
  let received = ref [] in
  let chan =
    Openflow.Channel.create ~name:"test" ~faults:inj ~engine
      ~latency:(Simtime.span_us 200.0)
      ~handler:(fun m -> received := m :: !received)
      ()
  in
  (engine, chan, received)

let test_channel_drops_all () =
  let engine, chan, received = lossy_channel ~schedule_spec:"drop=1" ~seed:3 in
  Openflow.Channel.send chan "m1";
  Openflow.Channel.send chan "m2";
  Engine.run engine;
  checki "all dropped" 0 (List.length !received);
  checki "sends counted" 2 (Openflow.Channel.messages_sent chan)

let test_channel_duplicates () =
  let engine, chan, received = lossy_channel ~schedule_spec:"dup=1" ~seed:3 in
  Openflow.Channel.send chan "m";
  Engine.run engine;
  checki "delivered twice" 2 (List.length !received)

let test_channel_jitter_delivers_everything () =
  let engine, chan, received =
    lossy_channel ~schedule_spec:"reorder=0.5,jitter_us=400" ~seed:7
  in
  for i = 1 to 20 do
    Openflow.Channel.send chan i
  done;
  Engine.run engine;
  checki "nothing lost" 20 (List.length !received)

(* --- Local controller: idempotent sequenced application --- *)

let test_latest_seq_wins () =
  let tb = Experiments.Testbed.create ~server_count:2 () in
  let a =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:0 ~name:"a" ~ip_last_octet:1 ())
  in
  let b =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:1 ~name:"b" ~ip_last_octet:2 ())
  in
  Experiments.Testbed.connect_tunnels tb;
  let local =
    Fastrak.Local_controller.create ~engine:tb.Experiments.Testbed.engine
      ~config:Fastrak.Config.default ~server:tb.Experiments.Testbed.servers.(0)
  in
  let acks = ref [] in
  Fastrak.Local_controller.set_uplink local (function
    | Fastrak.Local_controller.Ack { seq; _ } -> acks := seq :: !acks
    | Fastrak.Local_controller.Report _ | Fastrak.Local_controller.Resync _ ->
        ());
  let a_ip = Host.Vm.ip a.Host.Server.vm in
  let flow =
    Fkey.make ~src_ip:a_ip
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm)
      ~src_port:1234 ~dst_port:80 ~proto:Fkey.Tcp ~tenant
  in
  let pattern = Fkey.Pattern.src_aggregate flow in
  let offloaded () = List.length (Fastrak.Local_controller.offloaded_patterns local) in
  let apply seq directive =
    Fastrak.Local_controller.handle_sequenced local
      { Fastrak.Local_controller.seq; directive }
  in
  apply 5 (Fastrak.Local_controller.Offload { vm_ip = a_ip; pattern });
  checki "offload applied" 1 (offloaded ());
  (* A reordered stale demote must not override the newer offload. *)
  apply 3 (Fastrak.Local_controller.Demote { vm_ip = a_ip; pattern });
  checki "stale demote ignored" 1 (offloaded ());
  (* Re-delivered duplicate: a no-op, but still acked. *)
  apply 5 (Fastrak.Local_controller.Offload { vm_ip = a_ip; pattern });
  checki "duplicate idempotent" 1 (offloaded ());
  apply 7 (Fastrak.Local_controller.Demote { vm_ip = a_ip; pattern });
  checki "newer demote applied" 0 (offloaded ());
  checkb "every delivery acked" true (List.rev !acks = [ 5; 3; 5; 7 ])

(* --- TCAM reserve-failure counter --- *)

let counter name =
  match Obs.Metrics.find name with
  | Some (Obs.Metrics.Counter_v n) -> n
  | _ -> 0

let test_tcam_reserve_fail_counter () =
  let before = counter "fastrak.tcam.reserve_fail" in
  let tcam = Tor.Tcam.create ~capacity:2 in
  checkb "reserve ok" true (Tor.Tcam.reserve tcam 2);
  checkb "reserve fails" false (Tor.Tcam.reserve tcam 1);
  checki "counter bumped" (before + 1) (counter "fastrak.tcam.reserve_fail")

(* --- Control plane under faults --- *)

let fast_config =
  {
    Fastrak.Config.default with
    Fastrak.Config.epoch_period = Simtime.span_ms 100.0;
    poll_gap = Simtime.span_ms 40.0;
    min_score = 100.0;
  }

(* One hot transactional client (server0 -> server1) under a FasTrak
   control plane whose channels run the given fault schedule. *)
let faulty_testbed ?(config = fast_config) ?(tcam_capacity = 2048) ~seed ~faults () =
  let tb = Experiments.Testbed.create ~seed ~server_count:2 ~tcam_capacity () in
  let a =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:0 ~name:"hot" ~ip_last_octet:1 ())
  in
  let b =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:1 ~name:"sink" ~ip_last_octet:2 ())
  in
  Experiments.Testbed.connect_tunnels tb;
  let rm =
    Fastrak.Rule_manager.create ~engine:tb.Experiments.Testbed.engine ~config
      ~tor:tb.Experiments.Testbed.tor
      ~servers:(Array.to_list tb.Experiments.Testbed.servers)
      ~faults ()
  in
  Workloads.Transactions.Server.install ~vm:b.Host.Server.vm ~port:9000
    ~response_size:64 ();
  let client =
    Workloads.Transactions.Client.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        Workloads.Transactions.Client.servers = [ (Host.Vm.ip b.Host.Server.vm, 9000) ];
        connections = 1;
        outstanding = 8;
        request_size = 64;
        total_requests = None;
        src_port_base = 50_000;
      }
  in
  (tb, a, b, rm, client)

let views_reconcile tb rm =
  let tor_view =
    Fastrak.Tor_controller.offloaded_patterns (Fastrak.Rule_manager.tor_controller rm)
  in
  let local_view =
    List.concat_map
      (fun server ->
        match
          Fastrak.Rule_manager.local_controller rm ~server:(Host.Server.name server)
        with
        | Some local -> Fastrak.Local_controller.offloaded_patterns local
        | None -> [])
      (Array.to_list tb.Experiments.Testbed.servers)
  in
  let subset xs ys =
    List.for_all (fun x -> List.exists (Fkey.Pattern.equal x) ys) xs
  in
  subset tor_view local_view && subset local_view tor_view

(* Property: after ANY random fault schedule, once the load quiesces
   the TOR-side and server-side offloaded views reconcile, nothing is
   left unacked, and TCAM occupancy never exceeded capacity. *)
let prop_reconcile_after_faults =
  QCheck.Test.make ~count:5 ~name:"views reconcile after random fault schedule"
    (QCheck.int_range 0 10_000)
    (fun seed ->
      (* The schedule itself is drawn from a Dcsim.Rng stream, so the
         whole case is a pure function of [seed]. *)
      let rng = Rng.create ~seed in
      let sched =
        Schedule.lossy
          ~drop:(Rng.float rng 0.25)
          ~duplicate:(Rng.float rng 0.10)
          ~reorder:(Rng.float rng 0.10)
          ~jitter:(Simtime.span_us (Rng.float rng 500.0))
          ()
      in
      (* A small TCAM keeps capacity pressure on while faults churn the
         rule set. *)
      let tb, _, _, rm, client =
        faulty_testbed ~seed ~tcam_capacity:24 ~faults:sched ()
      in
      let tcam = Tor.Tor_switch.tcam tb.Experiments.Testbed.tor in
      let over_capacity = ref false in
      Engine.every tb.Experiments.Testbed.engine (Simtime.span_ms 10.0) (fun () ->
          if Tor.Tcam.used tcam > Tor.Tcam.capacity tcam then over_capacity := true;
          `Continue);
      Fastrak.Rule_manager.start rm;
      Experiments.Testbed.run_for tb ~seconds:3.0;
      Workloads.Transactions.Client.stop client;
      Experiments.Testbed.run_for tb ~seconds:3.0;
      let unacked =
        Fastrak.Tor_controller.unacked_directives
          (Fastrak.Rule_manager.tor_controller rm)
      in
      if !over_capacity then QCheck.Test.fail_report "TCAM exceeded capacity";
      if unacked <> 0 then
        QCheck.Test.fail_reportf "%d directives still unacked after drain" unacked;
      if not (views_reconcile tb rm) then
        QCheck.Test.fail_report "TOR and server views diverged";
      true)

(* A long link-down window: directives exhaust their retries, the peer
   is declared dead and its flows demoted (graceful degradation); when
   the link heals, uplink contact revives the peer, unreconciled
   demotes replay, and the system re-offloads and reconciles. *)
let test_dead_peer_demotes_and_revives () =
  let sched =
    match Schedule.of_string "down=0.3:2.0" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let config = { fast_config with Fastrak.Config.dead_peer_failures = 1 } in
  let tb, _, _, rm, _ = faulty_testbed ~config ~seed:42 ~faults:sched () in
  let deaths = ref 0 and revivals = ref 0 and retries = ref 0 in
  Obs.Trace.use_callback (fun _now ev ->
      match ev with
      | Obs.Trace.Peer_state { alive = false; _ } -> incr deaths
      | Obs.Trace.Peer_state { alive = true; _ } -> incr revivals
      | Obs.Trace.Ctrl_retry _ -> incr retries
      | _ -> ());
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  (* Mid-window: the offload directive has exhausted its retries. *)
  checkb "retried during window" true (!retries > 0);
  checkb "peer declared dead" true (!deaths > 0);
  checkb "dead verdict visible" true
    (Fastrak.Tor_controller.peer_alive
       (Fastrak.Rule_manager.tor_controller rm)
       ~server:"server0"
    = Some false);
  Experiments.Testbed.run_for tb ~seconds:3.0;
  Obs.Trace.disable ();
  (* Healed: contact revived the peer and the express lane is back. *)
  checkb "peer revived" true (!revivals > 0);
  checkb "alive verdict visible" true
    (Fastrak.Tor_controller.peer_alive
       (Fastrak.Rule_manager.tor_controller rm)
       ~server:"server0"
    = Some true);
  checkb "re-offloaded after heal" true (Fastrak.Rule_manager.offloaded_count rm > 0);
  checkb "views reconciled" true (views_reconcile tb rm);
  checki "nothing unacked" 0
    (Fastrak.Tor_controller.unacked_directives
       (Fastrak.Rule_manager.tor_controller rm))

(* --- VM migration abort --- *)

let test_migration_abort () =
  let config =
    { fast_config with Fastrak.Config.migration_timeout = Simtime.span_ms 200.0 }
  in
  let tb, a, _, rm, _ = faulty_testbed ~config ~seed:42 ~faults:Schedule.none () in
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  checkb "offloaded before migration" true (Fastrak.Rule_manager.offloaded_count rm > 0);
  let a_ip = Host.Vm.ip a.Host.Server.vm in
  let local = Option.get (Fastrak.Rule_manager.local_controller rm ~server:"server0") in
  let mg = Fastrak.Rule_manager.begin_vm_migration rm ~tenant ~vm_ip:a_ip in
  checkb "preparing" true (Fastrak.Rule_manager.migration_state mg = `Preparing);
  checkb "profile detached" true
    (match Fastrak.Rule_manager.migration_profile mg with
    | Some p -> Fastrak.Demand_profile.entry_count p > 0
    | None -> false);
  checkb "vm's rules returned" true
    (List.for_all
       (fun (p : Fkey.Pattern.t) -> p.Fkey.Pattern.src_ip <> Some a_ip)
       (Fastrak.Tor_controller.offloaded_patterns
          (Fastrak.Rule_manager.tor_controller rm)));
  (* The destination never confirms: the abort timer fires at 200 ms. *)
  Experiments.Testbed.run_for tb ~seconds:0.5;
  checkb "aborted" true (Fastrak.Rule_manager.migration_state mg = `Aborted);
  (* The demand profile is back at the source — not lost. *)
  checkb "profile restored at source" true
    (match Fastrak.Local_controller.profile local ~vm_ip:a_ip with
    | Some p -> Fastrak.Demand_profile.entry_count p > 0
    | None -> false);
  (* And the returned rules are re-installed in the express lane. *)
  checkb "rules re-installed" true
    (List.exists
       (fun (p : Fkey.Pattern.t) -> p.Fkey.Pattern.src_ip = Some a_ip)
       (Fastrak.Tor_controller.offloaded_patterns
          (Fastrak.Rule_manager.tor_controller rm)));
  (* A late confirmation is refused cleanly. *)
  checkb "late commit refused" false
    (Fastrak.Rule_manager.commit_vm_migration rm mg ~new_server:"server1")

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "schedule parse" test_schedule_parse;
    t "schedule rejects bad specs" test_schedule_rejects;
    t "schedule round-trips" test_schedule_roundtrip;
    QCheck_alcotest.to_alcotest prop_schedule_roundtrip;
    t "schedule profiles" test_schedule_profiles;
    t "injector deterministic" test_injector_deterministic;
    t "injector link-down window" test_injector_window;
    t "injector one-shot trigger" test_injector_trigger;
    t "channel drops all" test_channel_drops_all;
    t "channel duplicates" test_channel_duplicates;
    t "channel jitter loses nothing" test_channel_jitter_delivers_everything;
    t "latest seq wins" test_latest_seq_wins;
    t "tcam reserve_fail counter" test_tcam_reserve_fail_counter;
    QCheck_alcotest.to_alcotest prop_reconcile_after_faults;
    t "dead peer demotes and revives" test_dead_peer_demotes_and_revives;
    t "migration abort restores source" test_migration_abort;
  ]
