(* Tests for token buckets, the tc-style HTB hierarchy, and shapers. *)

module Simtime = Dcsim.Simtime
module Engine = Dcsim.Engine
module Packet = Netcore.Packet
module Fkey = Netcore.Fkey

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let tenant = Netcore.Tenant.of_int 7

let flow () =
  Fkey.make
    ~src_ip:(Netcore.Ipv4.of_string "10.7.0.1")
    ~dst_ip:(Netcore.Ipv4.of_string "10.7.0.2")
    ~src_port:1 ~dst_port:2 ~proto:Fkey.Tcp ~tenant

let mbps m = Rules.Rate_limit_spec.make ~rate_bps:(m *. 1e6) ()

(* --- Token bucket --- *)

let test_bucket_conform_within_burst () =
  let spec = Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:10_000 () in
  let b = Shaping.Token_bucket.create spec ~now:Simtime.zero in
  checkb "full burst conforms" true
    (Shaping.Token_bucket.try_consume b ~now:Simtime.zero ~bytes_len:10_000);
  checkb "empty now" false
    (Shaping.Token_bucket.try_consume b ~now:Simtime.zero ~bytes_len:1)

let test_bucket_refill () =
  let spec = Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:10_000 () in
  let b = Shaping.Token_bucket.create spec ~now:Simtime.zero in
  ignore (Shaping.Token_bucket.try_consume b ~now:Simtime.zero ~bytes_len:10_000);
  (* 8 Mb/s = 1 MB/s: after 5 ms, 5000 bytes back. *)
  let later = Simtime.of_ms 5.0 in
  checkb "refilled 5000" true
    (Shaping.Token_bucket.try_consume b ~now:later ~bytes_len:5_000);
  checkb "but not more" false
    (Shaping.Token_bucket.try_consume b ~now:later ~bytes_len:100)

let test_bucket_cap_at_burst () =
  let spec = Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:1_000 () in
  let b = Shaping.Token_bucket.create spec ~now:Simtime.zero in
  (* A long idle period must not bank more than the burst. *)
  let much_later = Simtime.of_sec 100.0 in
  Alcotest.check (Alcotest.float 1.0) "capped" 1_000.0
    (Shaping.Token_bucket.available b ~now:much_later)

let test_bucket_time_until_conform () =
  let spec = Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:1_000 () in
  let b = Shaping.Token_bucket.create spec ~now:Simtime.zero in
  ignore (Shaping.Token_bucket.try_consume b ~now:Simtime.zero ~bytes_len:1_000);
  let wait =
    Shaping.Token_bucket.time_until_conform b ~now:Simtime.zero ~bytes_len:1_000
  in
  (* 1000 bytes at 1 MB/s = 1 ms. *)
  checki "1ms" 1_000_000 (Simtime.span_to_ns wait)

let test_bucket_unlimited () =
  let b = Shaping.Token_bucket.create Rules.Rate_limit_spec.unlimited ~now:Simtime.zero in
  checkb "always conforms" true
    (Shaping.Token_bucket.try_consume b ~now:Simtime.zero ~bytes_len:1_000_000);
  checki "no wait" 0
    (Simtime.span_to_ns
       (Shaping.Token_bucket.time_until_conform b ~now:Simtime.zero ~bytes_len:1_000_000))

let test_bucket_set_spec_clamps () =
  let b =
    Shaping.Token_bucket.create
      (Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:100_000 ())
      ~now:Simtime.zero
  in
  Shaping.Token_bucket.set_spec b
    (Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:500 ())
    ~now:Simtime.zero;
  checkb "clamped to new burst" true
    (Shaping.Token_bucket.available b ~now:Simtime.zero <= 500.0)

(* Regression: the unlimited bucket's token count is a sentinel
   (float max_int), not earned credit — switching to a limited spec
   must not grant a free full burst. *)
let test_bucket_unlimited_to_limited_starts_empty () =
  let b =
    Shaping.Token_bucket.create Rules.Rate_limit_spec.unlimited ~now:Simtime.zero
  in
  let later = Simtime.of_sec 10.0 in
  Shaping.Token_bucket.set_spec b
    (Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:10_000 ())
    ~now:later;
  Alcotest.check (Alcotest.float 0.0) "no free burst" 0.0
    (Shaping.Token_bucket.available b ~now:later);
  (* Earned credit accrues normally from the transition onward. *)
  checkb "refills at the new rate" true
    (Shaping.Token_bucket.try_consume b
       ~now:(Simtime.add later (Simtime.span_ms 5.0))
       ~bytes_len:5_000);
  (* Limited->limited keeps accumulated tokens (clamped), as before. *)
  let b2 =
    Shaping.Token_bucket.create
      (Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:10_000 ())
      ~now:Simtime.zero
  in
  Shaping.Token_bucket.set_spec b2
    (Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:20_000 ())
    ~now:Simtime.zero;
  Alcotest.check (Alcotest.float 0.0) "kept earned tokens" 10_000.0
    (Shaping.Token_bucket.available b2 ~now:Simtime.zero)

let test_bucket_forced_negative () =
  let b =
    Shaping.Token_bucket.create
      (Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:100 ())
      ~now:Simtime.zero
  in
  Shaping.Token_bucket.consume_forced b ~now:Simtime.zero ~bytes_len:1_000;
  checkb "negative balance" true (Shaping.Token_bucket.available b ~now:Simtime.zero < 0.0)

(* --- HTB --- *)

let test_htb_within_rate () =
  let now = Simtime.zero in
  let h = Shaping.Htb.create ~link:(mbps 100.0) ~now in
  let leaf = Shaping.Htb.add_leaf h ~rate:(mbps 10.0) ~now () in
  checkb "admits within rate" true (Shaping.Htb.admit h leaf ~now ~bytes_len:1_000);
  checki "leaf count" 1 (Shaping.Htb.leaf_count h)

let test_htb_ceil_cap () =
  let now = Simtime.zero in
  let h = Shaping.Htb.create ~link:(mbps 100.0) ~now in
  let leaf =
    Shaping.Htb.add_leaf h ~rate:(mbps 1.0) ~ceil:(mbps 1.0) ~now ()
  in
  (* Drain the 1 Mb/s ceil burst (~12500 bytes + MTU floor). *)
  let spec = Rules.Rate_limit_spec.make ~rate_bps:1e6 () in
  let burst = spec.Rules.Rate_limit_spec.burst_bytes in
  checkb "burst admitted" true (Shaping.Htb.admit h leaf ~now ~bytes_len:burst);
  checkb "above ceil refused" false (Shaping.Htb.admit h leaf ~now ~bytes_len:1_000);
  checkb "wait positive" true
    (Simtime.span_to_ns (Shaping.Htb.delay_until_admit h leaf ~now ~bytes_len:1_000) > 0)

let test_htb_root_shared () =
  (* Two leaves with 5 Gb/s each over a 100 KB root burst: the root
     (physical link) is the shared constraint once its burst drains. *)
  let now = Simtime.zero in
  let link = Rules.Rate_limit_spec.make ~rate_bps:10e9 ~burst_bytes:100_000 () in
  let h = Shaping.Htb.create ~link ~now in
  let l1 = Shaping.Htb.add_leaf h ~rate:(mbps 5000.0) ~now () in
  let l2 = Shaping.Htb.add_leaf h ~rate:(mbps 5000.0) ~now () in
  checkb "l1 takes root burst" true (Shaping.Htb.admit h l1 ~now ~bytes_len:100_000);
  checkb "l2 blocked by root" false (Shaping.Htb.admit h l2 ~now ~bytes_len:50_000)

let test_htb_set_leaf_rate () =
  let now = Simtime.zero in
  let h = Shaping.Htb.create ~link:(mbps 100.0) ~now in
  let leaf = Shaping.Htb.add_leaf h ~rate:(mbps 10.0) ~now () in
  Shaping.Htb.set_leaf_rate h leaf ~rate:(mbps 20.0) ~now ();
  Alcotest.check (Alcotest.float 1.0) "rate updated" 20e6
    (Shaping.Htb.leaf_rate leaf).Rules.Rate_limit_spec.rate_bps

(* --- Shaper (needs an engine) --- *)

let test_shaper_passthrough_unlimited () =
  let engine = Engine.create () in
  let out = ref 0 in
  let s =
    Shaping.Shaper.create ~engine ~spec:Rules.Rate_limit_spec.unlimited
      ~forward:(fun _ -> incr out)
      ()
  in
  for _ = 1 to 10 do
    Shaping.Shaper.enqueue s
      (Packet.data_packet ~now:Simtime.zero ~flow:(flow ()) ~payload:1000)
  done;
  Engine.run engine;
  checki "all forwarded" 10 !out;
  checki "counted" 10 (Shaping.Shaper.forwarded s)

let test_shaper_enforces_rate () =
  let engine = Engine.create () in
  let out_times = ref [] in
  let spec = Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:1_500 () in
  let s =
    Shaping.Shaper.create ~engine ~spec
      ~forward:(fun _ -> out_times := Engine.now engine :: !out_times)
      ~size_of:(fun _ -> 1_000)
      ()
  in
  for _ = 1 to 11 do
    Shaping.Shaper.enqueue s
      (Packet.data_packet ~now:Simtime.zero ~flow:(flow ()) ~payload:1000)
  done;
  Engine.run engine;
  checki "all forwarded eventually" 11 (List.length !out_times);
  (* 11 KB through a 1 KB/ms pipe with 1.5 KB burst: ~>= 9 ms total. *)
  let last = List.hd !out_times in
  checkb "took at least 9ms" true Simtime.(last >= Simtime.of_ms 9.0);
  checkb "backlog recorded" true (Shaping.Shaper.backlogged_seconds s > 0.005)

let test_shaper_preserves_order () =
  let engine = Engine.create () in
  let order = ref [] in
  let spec = Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:1_000 () in
  let s =
    Shaping.Shaper.create ~engine ~spec
      ~forward:(fun p -> order := p.Packet.payload :: !order)
      ~size_of:(fun _ -> 1_000)
      ()
  in
  for i = 1 to 5 do
    Shaping.Shaper.enqueue s
      (Packet.data_packet ~now:Simtime.zero ~flow:(flow ()) ~payload:i)
  done;
  Engine.run engine;
  Alcotest.check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_shaper_drain_queue () =
  let engine = Engine.create () in
  let forwarded = ref 0 and drained = ref 0 in
  let spec = Rules.Rate_limit_spec.make ~rate_bps:8e3 ~burst_bytes:1_000 () in
  let s =
    Shaping.Shaper.create ~engine ~spec
      ~forward:(fun _ -> incr forwarded)
      ~size_of:(fun _ -> 1_000)
      ()
  in
  for _ = 1 to 5 do
    Shaping.Shaper.enqueue s
      (Packet.data_packet ~now:Simtime.zero ~flow:(flow ()) ~payload:0)
  done;
  (* Only the burst-window packet leaves immediately; drain the rest. *)
  Shaping.Shaper.drain_queue s (fun _ -> incr drained);
  checki "one through" 1 !forwarded;
  checki "four drained" 4 !drained;
  checki "queue empty" 0 (Shaping.Shaper.queue_length s)

let test_shaper_set_spec_takes_effect () =
  let engine = Engine.create () in
  let out = ref 0 in
  let spec = Rules.Rate_limit_spec.make ~rate_bps:8.0 ~burst_bytes:1_000 () in
  let s =
    Shaping.Shaper.create ~engine ~spec
      ~forward:(fun _ -> incr out)
      ~size_of:(fun _ -> 1_000)
      ()
  in
  for _ = 1 to 3 do
    Shaping.Shaper.enqueue s
      (Packet.data_packet ~now:Simtime.zero ~flow:(flow ()) ~payload:0)
  done;
  (* At 1 B/s the tail would take ~2000 s; raising the limit releases it. *)
  Shaping.Shaper.set_spec s (mbps 100.0);
  Engine.run ~until:(Simtime.of_sec 1.0) engine;
  checki "released" 3 !out

(* --- Property: shaper long-run rate never exceeds the limit --- *)

let prop_shaper_rate_bound =
  QCheck2.Test.make ~name:"shaper long-run rate <= limit" ~count:25
    QCheck2.Gen.(pair (int_range 1 50) (int_range 500 2000))
    (fun (n_packets, pkt_size) ->
      let engine = Engine.create () in
      let spec = Rules.Rate_limit_spec.make ~rate_bps:8e6 ~burst_bytes:2_000 () in
      let last = ref Simtime.zero in
      let s =
        Shaping.Shaper.create ~engine ~spec
          ~forward:(fun _ -> last := Engine.now engine)
          ~size_of:(fun _ -> pkt_size)
          ()
      in
      for _ = 1 to n_packets do
        Shaping.Shaper.enqueue s
          (Packet.data_packet ~now:Simtime.zero ~flow:(flow ()) ~payload:0)
      done;
      Engine.run engine;
      let total_bytes = n_packets * pkt_size in
      let elapsed = Simtime.to_sec !last in
      (* bytes beyond the burst must take at least their serialization
         time at the configured rate. *)
      float_of_int (total_bytes - 2_000) /. 1e6 <= elapsed +. 1e-6)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "bucket conform within burst" test_bucket_conform_within_burst;
    t "bucket refill" test_bucket_refill;
    t "bucket cap at burst" test_bucket_cap_at_burst;
    t "bucket time until conform" test_bucket_time_until_conform;
    t "bucket unlimited" test_bucket_unlimited;
    t "bucket set_spec clamps" test_bucket_set_spec_clamps;
    t "bucket unlimited to limited starts empty"
      test_bucket_unlimited_to_limited_starts_empty;
    t "bucket forced negative" test_bucket_forced_negative;
    t "htb within rate" test_htb_within_rate;
    t "htb ceil cap" test_htb_ceil_cap;
    t "htb root shared" test_htb_root_shared;
    t "htb set leaf rate" test_htb_set_leaf_rate;
    t "shaper passthrough" test_shaper_passthrough_unlimited;
    t "shaper enforces rate" test_shaper_enforces_rate;
    t "shaper preserves order" test_shaper_preserves_order;
    t "shaper drain queue" test_shaper_drain_queue;
    t "shaper set_spec" test_shaper_set_spec_takes_effect;
    QCheck_alcotest.to_alcotest prop_shaper_rate_bound;
  ]
