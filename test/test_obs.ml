(* Tests for the observability layer: JSONL codec round-trips, trace
   emission during a live control-plane run, metrics registry
   consistency with the engines' own counters, and the no-op sink's
   non-interference with simulation results. *)

module Simtime = Dcsim.Simtime
module Engine = Dcsim.Engine
module Fkey = Netcore.Fkey
module Ipv4 = Netcore.Ipv4
module Trace = Obs.Trace
module Metrics = Obs.Metrics

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let tenant = Netcore.Tenant.of_int 7

(* --- JSONL codec --- *)

let sample_pattern =
  {
    Fkey.Pattern.any with
    Fkey.Pattern.src_ip = Some (Ipv4.of_string "10.7.0.1");
    src_port = Some 11211;
    tenant = Some tenant;
  }

let full_pattern =
  {
    Fkey.Pattern.src_ip = Some (Ipv4.of_string "10.7.0.1");
    dst_ip = Some (Ipv4.of_string "10.7.0.2");
    src_port = Some 50_000;
    dst_port = Some 9000;
    proto = Some Fkey.Tcp;
    tenant = Some tenant;
  }

let vm1 = Ipv4.of_string "10.7.0.1"
let vm2 = Ipv4.of_string "10.7.0.2"

let sample_events =
  [
    Trace.Flow_promoted
      {
        pattern = sample_pattern;
        tenant;
        vm_ip = vm1;
        server = "server0";
        score = 12345.75;
        tcam_entries = 3;
      };
    Trace.Flow_demoted
      {
        pattern = full_pattern;
        tenant;
        vm_ip = vm1;
        server = "server0";
        reason = "deselected";
      };
    Trace.Tcam_install { tenant; entries = 4; used = 12; capacity = 2048 };
    Trace.Tcam_evict { tenant; entries = 4; used = 8; capacity = 2048 };
    Trace.Fps_split
      { vm_ip = vm2; direction = Trace.Tx; soft_bps = 7.5e8; hard_bps = 2.5e8 };
    Trace.Fps_split
      {
        vm_ip = vm2;
        direction = Trace.Rx;
        soft_bps = 0.1 +. 0.2;  (* not exactly representable: exercises %.17g *)
        hard_bps = 1e9;
      };
    Trace.Path_transition
      { vm_ip = vm1; pattern = sample_pattern; path = Trace.Express };
    Trace.Path_transition
      { vm_ip = vm1; pattern = Fkey.Pattern.any; path = Trace.Software };
    Trace.Rule_pushed
      { server = "server1"; pattern = sample_pattern; push = `Offload };
    Trace.Rule_pushed
      { server = "server1"; pattern = full_pattern; push = `Demote };
    Trace.Epoch_tick { me = "server0.me"; epoch = 17; interval = 2 };
    Trace.Ctrl_drop { channel = "server0.directive" };
    Trace.Ctrl_retry { server = "server0"; seq = 42; attempt = 3 };
    Trace.Peer_state { server = "server1"; alive = false };
    Trace.Peer_state { server = "server1"; alive = true };
    Trace.Migration_stage { vm_ip = vm1; stage = `Prepare };
    Trace.Migration_stage { vm_ip = vm1; stage = `Commit };
    Trace.Migration_stage { vm_ip = vm2; stage = `Abort };
  ]

let test_jsonl_round_trip () =
  List.iteri
    (fun i event ->
      let now = Simtime.of_ns ((i + 1) * 123_456_789) in
      let line = Trace.to_jsonl now event in
      match Trace.of_jsonl line with
      | None -> Alcotest.failf "event %d failed to parse: %s" i line
      | Some (now', event') ->
          checki "timestamp round-trips" (Simtime.to_ns now) (Simtime.to_ns now');
          (* Structural equality via re-encoding: identical events encode
             identically, and the encoding covers every payload field. *)
          checks "event round-trips" line (Trace.to_jsonl now' event'))
    sample_events

let test_jsonl_rejects_garbage () =
  checkb "empty" true (Trace.of_jsonl "" = None);
  checkb "not json" true (Trace.of_jsonl "hello" = None);
  checkb "unknown event" true
    (Trace.of_jsonl {|{"t_ns":1,"t":0.0,"ev":"martian"}|} = None);
  checkb "missing fields" true
    (Trace.of_jsonl {|{"t_ns":1,"t":0.0,"ev":"epoch_tick","me":"x"}|} = None)

let test_pattern_codec () =
  List.iter
    (fun p ->
      match Trace.pattern_of_string (Trace.pattern_to_string p) with
      | None -> Alcotest.failf "unparseable: %s" (Trace.pattern_to_string p)
      | Some p' -> checkb "pattern round-trips" true (Fkey.Pattern.equal p p'))
    [ Fkey.Pattern.any; sample_pattern; full_pattern;
      { full_pattern with Fkey.Pattern.proto = Some (Fkey.Other 47) } ];
  checks "wildcard form" "*/*/*/*/*/*" (Trace.pattern_to_string Fkey.Pattern.any);
  checkb "garbage rejected" true (Trace.pattern_of_string "1/2/3" = None)

(* --- live run: events and metrics --- *)

(* Mirror of test_fastrak's hot testbed: one hot transactional client on
   server0 talking to a sink on server1, with a fast control loop. *)
let fast_config =
  {
    Fastrak.Config.default with
    Fastrak.Config.epoch_period = Simtime.span_ms 100.0;
    poll_gap = Simtime.span_ms 40.0;
    min_score = 100.0;
  }

let hot_testbed () =
  let tb = Experiments.Testbed.create ~server_count:2 () in
  let a =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:0 ~name:"hot" ~ip_last_octet:1 ())
  in
  let b =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:1 ~name:"sink" ~ip_last_octet:2 ())
  in
  Experiments.Testbed.connect_tunnels tb;
  let rm =
    Fastrak.Rule_manager.create ~engine:tb.Experiments.Testbed.engine
      ~config:fast_config ~tor:tb.Experiments.Testbed.tor
      ~servers:(Array.to_list tb.Experiments.Testbed.servers)
      ()
  in
  Workloads.Transactions.Server.install ~vm:b.Host.Server.vm ~port:9000
    ~response_size:64 ();
  let client =
    Workloads.Transactions.Client.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        Workloads.Transactions.Client.servers =
          [ (Host.Vm.ip b.Host.Server.vm, 9000) ];
        connections = 1;
        outstanding = 8;
        request_size = 64;
        total_requests = None;
        src_port_base = 50_000;
      }
  in
  (tb, rm, client)

let count_ev f events = List.length (List.filter (fun (_, e) -> f e) events)

let test_trace_and_metrics_of_live_run () =
  let events = ref [] in
  Trace.use_callback (fun now ev -> events := (now, ev) :: !events);
  let before = Metrics.snapshot () in
  let tb, rm, client = hot_testbed () in
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  let ordered () = List.rev !events in
  checkb "promotion traced" true
    (count_ev (function Trace.Flow_promoted _ -> true | _ -> false) (ordered ())
    > 0);
  checkb "tcam install traced" true
    (count_ev (function Trace.Tcam_install _ -> true | _ -> false) (ordered ())
    > 0);
  (* The VRF install is live before the promotion is announced
     (make-before-break), so the first install precedes the first
     promotion in emission order, and both carry the same tenant. *)
  let first p =
    let rec go = function
      | [] -> None
      | (now, e) :: rest -> if p e then Some (now, e) else go rest
    in
    go (ordered ())
  in
  (match
     ( first (function Trace.Tcam_install _ -> true | _ -> false),
       first (function Trace.Flow_promoted _ -> true | _ -> false) )
   with
  | ( Some (t_inst, Trace.Tcam_install { tenant = ti; _ }),
      Some (t_prom, Trace.Flow_promoted { tenant = tp; _ }) ) ->
      checkb "install not after promotion" true
        (Simtime.to_ns t_inst <= Simtime.to_ns t_prom);
      checki "same tenant" (Netcore.Tenant.to_int ti) (Netcore.Tenant.to_int tp)
  | _ -> Alcotest.fail "missing install or promotion");
  (* Stop the workload; history ages out and the DE demotes. *)
  Workloads.Transactions.Client.stop client;
  Experiments.Testbed.run_for tb ~seconds:3.0;
  Trace.disable ();
  let events = ordered () in
  checkb "demotion traced" true
    (List.exists
       (function
         | _, Trace.Flow_demoted { reason; _ } -> reason = "deselected"
         | _ -> false)
       events);
  checkb "tcam evict traced" true
    (count_ev (function Trace.Tcam_evict _ -> true | _ -> false) events > 0);
  checkb "epoch ticks traced" true
    (count_ev (function Trace.Epoch_tick _ -> true | _ -> false) events > 0);
  (* Sim timestamps never go backwards along the emission order. *)
  let monotone, _ =
    List.fold_left
      (fun (ok, prev) (now, _) -> (ok && Simtime.to_ns now >= prev, Simtime.to_ns now))
      (true, 0) events
  in
  checkb "timestamps monotone" true monotone;
  (* Registry deltas agree with what the engines counted themselves. *)
  let after = Metrics.snapshot () in
  let delta = Metrics.diff ~before ~after in
  let counter_delta name =
    match List.assoc_opt name delta with
    | Some (Metrics.Counter_v n) -> n
    | _ -> 0
  in
  let ovs_upcalls =
    Array.fold_left
      (fun acc s -> acc + Vswitch.Ovs.upcalls (Host.Server.ovs s))
      0 tb.Experiments.Testbed.servers
  in
  checki "upcall counter matches engines" ovs_upcalls
    (counter_delta "vswitch.upcalls");
  let promotions = counter_delta "fastrak.promotions" in
  let demotions = counter_delta "fastrak.demotions" in
  checkb "promotions happened" true (promotions > 0);
  checki "promotions - demotions = live offloads"
    (Fastrak.Rule_manager.offloaded_count rm)
    (promotions - demotions);
  checki "trace promotions = promotion counter" promotions
    (count_ev (function Trace.Flow_promoted _ -> true | _ -> false) events)

(* --- no-op sink leaves results unchanged --- *)

let run_scenario () =
  let tb, rm, client = hot_testbed () in
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  ( Workloads.Transactions.Client.completed client,
    Fastrak.Rule_manager.offloaded_count rm,
    Engine.events_processed tb.Experiments.Testbed.engine )

let test_noop_sink_identical_results () =
  Trace.disable ();
  let completed_off, offloaded_off, events_off = run_scenario () in
  let traced = ref 0 in
  Trace.use_callback (fun _ _ -> incr traced);
  let completed_on, offloaded_on, events_on = run_scenario () in
  Trace.disable ();
  checkb "tracing saw events" true (!traced > 0);
  checki "same completed requests" completed_off completed_on;
  checki "same offload count" offloaded_off offloaded_on;
  checki "same event count" events_off events_on

(* --- metrics registry --- *)

let test_registry_kinds_and_diff () =
  let registry = Metrics.create () in
  let c = Metrics.counter ~registry "x.count" in
  Metrics.incr c;
  Metrics.add c 4;
  let g = Metrics.gauge ~registry "x.gauge" in
  Metrics.set_gauge g 2.5;
  let s = Metrics.summary ~registry "x.summary" in
  Metrics.observe s 1.0;
  Metrics.observe s 3.0;
  (* Same name and kind: the same instrument comes back. *)
  Metrics.incr (Metrics.counter ~registry "x.count");
  checki "counter accumulated" 6 (Metrics.counter_value c);
  (* Same name, different kind: refused. *)
  checkb "kind clash raises" true
    (match Metrics.gauge ~registry "x.count" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let before = Metrics.snapshot ~registry () in
  Metrics.add c 10;
  Metrics.observe s 5.0;
  let after = Metrics.snapshot ~registry () in
  let delta = Metrics.diff ~before ~after in
  checkb "unchanged gauge dropped" true (List.assoc_opt "x.gauge" delta = None);
  (match List.assoc_opt "x.count" delta with
  | Some (Metrics.Counter_v 10) -> ()
  | _ -> Alcotest.fail "counter delta wrong");
  (match List.assoc_opt "x.summary" delta with
  | Some (Metrics.Summary_v { count = 1; sum; _ }) ->
      checkb "summary delta sum" true (Float.abs (sum -. 5.0) < 1e-9)
  | _ -> Alcotest.fail "summary delta wrong");
  (* Dumps include every instrument. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let json = Metrics.to_json (Metrics.snapshot ~registry ()) in
  checkb "json has counter" true (contains json "\"x.count\": 16");
  let csv = Metrics.to_csv (Metrics.snapshot ~registry ()) in
  checkb "csv has gauge row" true (contains csv "x.gauge,gauge,1,2.5")

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "jsonl round trip" test_jsonl_round_trip;
    t "jsonl rejects garbage" test_jsonl_rejects_garbage;
    t "pattern codec" test_pattern_codec;
    t "live run traces and metrics" test_trace_and_metrics_of_live_run;
    t "no-op sink identical results" test_noop_sink_identical_results;
    t "registry kinds and diff" test_registry_kinds_and_diff;
  ]
