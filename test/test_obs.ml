(* Tests for the observability layer: JSONL codec round-trips, trace
   emission during a live control-plane run, metrics registry
   consistency with the engines' own counters, and the no-op sink's
   non-interference with simulation results. *)

module Simtime = Dcsim.Simtime
module Engine = Dcsim.Engine
module Fkey = Netcore.Fkey
module Ipv4 = Netcore.Ipv4
module Trace = Obs.Trace
module Metrics = Obs.Metrics

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let tenant = Netcore.Tenant.of_int 7

(* --- JSONL codec --- *)

let sample_pattern =
  {
    Fkey.Pattern.any with
    Fkey.Pattern.src_ip = Some (Ipv4.of_string "10.7.0.1");
    src_port = Some 11211;
    tenant = Some tenant;
  }

let full_pattern =
  {
    Fkey.Pattern.src_ip = Some (Ipv4.of_string "10.7.0.1");
    dst_ip = Some (Ipv4.of_string "10.7.0.2");
    src_port = Some 50_000;
    dst_port = Some 9000;
    proto = Some Fkey.Tcp;
    tenant = Some tenant;
  }

let vm1 = Ipv4.of_string "10.7.0.1"
let vm2 = Ipv4.of_string "10.7.0.2"

let sample_events =
  [
    Trace.Flow_promoted
      {
        pattern = sample_pattern;
        tenant;
        vm_ip = vm1;
        server = "server0";
        score = 12345.75;
        tcam_entries = 3;
      };
    Trace.Flow_demoted
      {
        pattern = full_pattern;
        tenant;
        vm_ip = vm1;
        server = "server0";
        reason = "deselected";
      };
    Trace.Tcam_install { tenant; entries = 4; used = 12; capacity = 2048 };
    Trace.Tcam_evict { tenant; entries = 4; used = 8; capacity = 2048 };
    Trace.Fps_split
      {
        vm_ip = vm2;
        direction = Trace.Tx;
        soft_bps = 7.5e8;
        hard_bps = 2.5e8;
        total_bps = 9.0e8;
        overflow_bps = 5.0e7;
      };
    Trace.Fps_split
      {
        vm_ip = vm2;
        direction = Trace.Rx;
        soft_bps = 0.1 +. 0.2;  (* not exactly representable: exercises %.17g *)
        hard_bps = 1e9;
        total_bps = 1e9 +. (0.1 +. 0.2);
        overflow_bps = 0.0;
      };
    Trace.Path_transition
      { vm_ip = vm1; pattern = sample_pattern; path = Trace.Express };
    Trace.Path_transition
      { vm_ip = vm1; pattern = Fkey.Pattern.any; path = Trace.Software };
    Trace.Rule_pushed
      { server = "server1"; pattern = sample_pattern; push = `Offload; seq = 12 };
    Trace.Rule_pushed
      { server = "server1"; pattern = full_pattern; push = `Demote; seq = 13 };
    Trace.Epoch_tick { me = "server0.me"; epoch = 17; interval = 2 };
    Trace.Ctrl_drop { channel = "server0.directive" };
    Trace.Ctrl_retry { server = "server0"; seq = 42; attempt = 3; span = 9 };
    Trace.Peer_state { server = "server1"; alive = false };
    Trace.Peer_state { server = "server1"; alive = true };
    Trace.Migration_stage { vm_ip = vm1; stage = `Prepare };
    Trace.Migration_stage { vm_ip = vm1; stage = `Commit };
    Trace.Migration_stage { vm_ip = vm2; stage = `Abort };
    Trace.Span_begin
      {
        span = 9;
        parent = 0;
        kind = "directive";
        name = "offload seq=42";
        track = "server0";
      };
    Trace.Span_end { span = 9; outcome = "acked" };
    Trace.Span_begin
      {
        span = 10;
        parent = 9;
        kind = "install";
        name = "install";
        track = "tor";
      };
    Trace.Span_end { span = 10; outcome = "failed" };
  ]

let test_jsonl_round_trip () =
  List.iteri
    (fun i event ->
      let now = Simtime.of_ns ((i + 1) * 123_456_789) in
      let line = Trace.to_jsonl now event in
      match Trace.of_jsonl line with
      | None -> Alcotest.failf "event %d failed to parse: %s" i line
      | Some (now', event') ->
          checki "timestamp round-trips" (Simtime.to_ns now) (Simtime.to_ns now');
          (* Structural equality via re-encoding: identical events encode
             identically, and the encoding covers every payload field. *)
          checks "event round-trips" line (Trace.to_jsonl now' event'))
    sample_events

let test_jsonl_rejects_garbage () =
  checkb "empty" true (Trace.of_jsonl "" = None);
  checkb "not json" true (Trace.of_jsonl "hello" = None);
  checkb "unknown event" true
    (Trace.of_jsonl {|{"t_ns":1,"t":0.0,"ev":"martian"}|} = None);
  checkb "missing fields" true
    (Trace.of_jsonl {|{"t_ns":1,"t":0.0,"ev":"epoch_tick","me":"x"}|} = None)

let test_pattern_codec () =
  List.iter
    (fun p ->
      match Trace.pattern_of_string (Trace.pattern_to_string p) with
      | None -> Alcotest.failf "unparseable: %s" (Trace.pattern_to_string p)
      | Some p' -> checkb "pattern round-trips" true (Fkey.Pattern.equal p p'))
    [ Fkey.Pattern.any; sample_pattern; full_pattern;
      { full_pattern with Fkey.Pattern.proto = Some (Fkey.Other 47) } ];
  checks "wildcard form" "*/*/*/*/*/*" (Trace.pattern_to_string Fkey.Pattern.any);
  checkb "garbage rejected" true (Trace.pattern_of_string "1/2/3" = None)

(* --- live run: events and metrics --- *)

(* Mirror of test_fastrak's hot testbed: one hot transactional client on
   server0 talking to a sink on server1, with a fast control loop. *)
let fast_config =
  {
    Fastrak.Config.default with
    Fastrak.Config.epoch_period = Simtime.span_ms 100.0;
    poll_gap = Simtime.span_ms 40.0;
    min_score = 100.0;
  }

let hot_testbed () =
  let tb = Experiments.Testbed.create ~server_count:2 () in
  let a =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:0 ~name:"hot" ~ip_last_octet:1 ())
  in
  let b =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:1 ~name:"sink" ~ip_last_octet:2 ())
  in
  Experiments.Testbed.connect_tunnels tb;
  let rm =
    Fastrak.Rule_manager.create ~engine:tb.Experiments.Testbed.engine
      ~config:fast_config ~tor:tb.Experiments.Testbed.tor
      ~servers:(Array.to_list tb.Experiments.Testbed.servers)
      ()
  in
  Workloads.Transactions.Server.install ~vm:b.Host.Server.vm ~port:9000
    ~response_size:64 ();
  let client =
    Workloads.Transactions.Client.start ~engine:tb.Experiments.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        Workloads.Transactions.Client.servers =
          [ (Host.Vm.ip b.Host.Server.vm, 9000) ];
        connections = 1;
        outstanding = 8;
        request_size = 64;
        total_requests = None;
        src_port_base = 50_000;
      }
  in
  (tb, rm, client)

let count_ev f events = List.length (List.filter (fun (_, e) -> f e) events)

let test_trace_and_metrics_of_live_run () =
  let events = ref [] in
  Trace.use_callback (fun now ev -> events := (now, ev) :: !events);
  let before = Metrics.snapshot () in
  let tb, rm, client = hot_testbed () in
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  let ordered () = List.rev !events in
  checkb "promotion traced" true
    (count_ev (function Trace.Flow_promoted _ -> true | _ -> false) (ordered ())
    > 0);
  checkb "tcam install traced" true
    (count_ev (function Trace.Tcam_install _ -> true | _ -> false) (ordered ())
    > 0);
  (* The VRF install is live before the promotion is announced
     (make-before-break), so the first install precedes the first
     promotion in emission order, and both carry the same tenant. *)
  let first p =
    let rec go = function
      | [] -> None
      | (now, e) :: rest -> if p e then Some (now, e) else go rest
    in
    go (ordered ())
  in
  (match
     ( first (function Trace.Tcam_install _ -> true | _ -> false),
       first (function Trace.Flow_promoted _ -> true | _ -> false) )
   with
  | ( Some (t_inst, Trace.Tcam_install { tenant = ti; _ }),
      Some (t_prom, Trace.Flow_promoted { tenant = tp; _ }) ) ->
      checkb "install not after promotion" true
        (Simtime.to_ns t_inst <= Simtime.to_ns t_prom);
      checki "same tenant" (Netcore.Tenant.to_int ti) (Netcore.Tenant.to_int tp)
  | _ -> Alcotest.fail "missing install or promotion");
  (* Stop the workload; history ages out and the DE demotes. *)
  Workloads.Transactions.Client.stop client;
  Experiments.Testbed.run_for tb ~seconds:3.0;
  Trace.disable ();
  let events = ordered () in
  checkb "demotion traced" true
    (List.exists
       (function
         | _, Trace.Flow_demoted { reason; _ } -> reason = "deselected"
         | _ -> false)
       events);
  checkb "tcam evict traced" true
    (count_ev (function Trace.Tcam_evict _ -> true | _ -> false) events > 0);
  checkb "epoch ticks traced" true
    (count_ev (function Trace.Epoch_tick _ -> true | _ -> false) events > 0);
  (* Sim timestamps never go backwards along the emission order. *)
  let monotone, _ =
    List.fold_left
      (fun (ok, prev) (now, _) -> (ok && Simtime.to_ns now >= prev, Simtime.to_ns now))
      (true, 0) events
  in
  checkb "timestamps monotone" true monotone;
  (* Registry deltas agree with what the engines counted themselves. *)
  let after = Metrics.snapshot () in
  let delta = Metrics.diff ~before ~after in
  let counter_delta name =
    match List.assoc_opt name delta with
    | Some (Metrics.Counter_v n) -> n
    | _ -> 0
  in
  let ovs_upcalls =
    Array.fold_left
      (fun acc s -> acc + Vswitch.Ovs.upcalls (Host.Server.ovs s))
      0 tb.Experiments.Testbed.servers
  in
  checki "upcall counter matches engines" ovs_upcalls
    (counter_delta "vswitch.upcalls");
  let promotions = counter_delta "fastrak.promotions" in
  let demotions = counter_delta "fastrak.demotions" in
  checkb "promotions happened" true (promotions > 0);
  checki "promotions - demotions = live offloads"
    (Fastrak.Rule_manager.offloaded_count rm)
    (promotions - demotions);
  checki "trace promotions = promotion counter" promotions
    (count_ev (function Trace.Flow_promoted _ -> true | _ -> false) events)

(* --- no-op sink leaves results unchanged --- *)

let run_scenario () =
  let tb, rm, client = hot_testbed () in
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  ( Workloads.Transactions.Client.completed client,
    Fastrak.Rule_manager.offloaded_count rm,
    Engine.events_processed tb.Experiments.Testbed.engine )

let test_noop_sink_identical_results () =
  Trace.disable ();
  let completed_off, offloaded_off, events_off = run_scenario () in
  let traced = ref 0 in
  Trace.use_callback (fun _ _ -> incr traced);
  let completed_on, offloaded_on, events_on = run_scenario () in
  Trace.disable ();
  checkb "tracing saw events" true (!traced > 0);
  checki "same completed requests" completed_off completed_on;
  checki "same offload count" offloaded_off offloaded_on;
  checki "same event count" events_off events_on

(* --- codec robustness: random corruptions never raise --- *)

(* Replace the value of [field] (a bare JSON number) with [nan]. *)
let nanify field line =
  let marker = "\"" ^ field ^ "\":" in
  let mlen = String.length marker in
  let n = String.length line in
  let rec find i =
    if i + mlen > n then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> line
  | Some start ->
      let stop = ref start in
      while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do
        incr stop
      done;
      String.sub line 0 start ^ "nan" ^ String.sub line !stop (n - !stop)

let prop_of_jsonl_corruption_safe =
  let gen =
    QCheck2.Gen.(
      quad
        (int_range 0 (List.length sample_events - 1))
        (int_range 0 1_000_000_000)
        (int_range 0 500)
        (oneof [ return `Truncate; map (fun c -> `Flip c) (char_range '\000' '\255') ]))
  in
  QCheck2.Test.make ~name:"of_jsonl survives random corruption" ~count:500 gen
    (fun (idx, t_ns, pos, op) ->
      let line =
        Trace.to_jsonl (Simtime.of_ns t_ns) (List.nth sample_events idx)
      in
      let n = String.length line in
      (match op with
      | `Truncate ->
          (* Any strict prefix is malformed: the closing brace is gone. *)
          let k = pos mod n in
          if Trace.of_jsonl (String.sub line 0 k) <> None then
            QCheck2.Test.fail_reportf "truncated line parsed: %s"
              (String.sub line 0 k)
      | `Flip c -> (
          let k = pos mod n in
          let corrupted = Bytes.of_string line in
          Bytes.set corrupted k c;
          (* A single byte flip may still parse (e.g. inside a server
             name) — the property is only that it never raises and that
             a successful parse re-encodes. *)
          match Trace.of_jsonl (Bytes.to_string corrupted) with
          | None -> ()
          | Some (now, ev) -> ignore (Trace.to_jsonl now ev)));
      true)

let test_of_jsonl_nan_payloads () =
  List.iteri
    (fun i event ->
      let line = Trace.to_jsonl (Simtime.of_ns ((i + 1) * 1000)) event in
      List.iter
        (fun field ->
          let poisoned = nanify field line in
          if poisoned <> line then
            checkb
              (Printf.sprintf "nan %s rejected (event %d)" field i)
              true
              (Trace.of_jsonl poisoned = None))
        [ "t_ns"; "t"; "score"; "soft_bps"; "hard_bps"; "total_bps";
          "overflow_bps"; "seq"; "span" ])
    sample_events

(* --- timeseries: P2 quantile estimators --- *)

let test_p2_quantiles () =
  let collector = Obs.Timeseries.create () in
  let s = Obs.Timeseries.series ~collector "test.latency" in
  (* A deterministic pseudo-shuffle of 1..10_000: quantiles of the
     uniform grid are known exactly. *)
  let n = 10_000 in
  let lcg = ref 12345 in
  let order = Array.init n (fun i -> i + 1) in
  for i = n - 1 downto 1 do
    lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    let j = !lcg mod (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  Array.iter (fun v -> Obs.Timeseries.observe s (float_of_int v)) order;
  let q = Obs.Timeseries.quantiles s in
  checki "count" n q.Obs.Timeseries.count;
  let within name expected tolerance actual =
    checkb
      (Printf.sprintf "%s ~ %.0f (got %.1f)" name expected actual)
      true
      (Float.abs (actual -. expected) <= tolerance)
  in
  within "p50" 5000.0 150.0 q.Obs.Timeseries.p50;
  within "p90" 9000.0 150.0 q.Obs.Timeseries.p90;
  within "p99" 9900.0 150.0 q.Obs.Timeseries.p99;
  within "mean" 5000.5 1.0 q.Obs.Timeseries.mean;
  (* Small counts fall back to exact order statistics. *)
  let s2 = Obs.Timeseries.series ~collector "test.small" in
  List.iter (Obs.Timeseries.observe s2) [ 30.0; 10.0; 20.0 ];
  let q2 = Obs.Timeseries.quantiles s2 in
  checkb "small p50 exact" true (q2.Obs.Timeseries.p50 = 20.0);
  (* NaN observations are dropped, not propagated. *)
  Obs.Timeseries.observe s2 Float.nan;
  checki "nan dropped" 3 (Obs.Timeseries.quantiles s2).Obs.Timeseries.count;
  (* reset_series clears estimator state but keeps handles. *)
  Obs.Timeseries.reset_series ~collector ();
  checki "reset count" 0 (Obs.Timeseries.quantiles s).Obs.Timeseries.count

let test_timeseries_rows_and_output () =
  let collector = Obs.Timeseries.create () in
  let s = Obs.Timeseries.series ~collector "a.b" in
  let empty = Obs.Timeseries.series ~collector "never.observed" in
  ignore empty;
  Obs.Timeseries.observe s 42.0;
  Obs.Timeseries.tick ~collector ~now:(Simtime.of_ns 1_000_000) ();
  Obs.Timeseries.observe s 58.0;
  Obs.Timeseries.tick ~collector ~now:(Simtime.of_ns 2_000_000) ();
  let rows = Obs.Timeseries.rows ~collector () in
  (* Series with no observations produce no rows. *)
  checki "two rows" 2 (List.length rows);
  let r2 = List.nth rows 1 in
  checki "row count grows" 2 r2.Obs.Timeseries.stats.Obs.Timeseries.count;
  checkb "row mean" true
    (Float.abs (r2.Obs.Timeseries.stats.Obs.Timeseries.mean -. 50.0) < 1e-9);
  let line = Obs.Timeseries.row_to_jsonl r2 in
  checkb "jsonl row parses flat" true (Trace.parse_flat line <> None)

(* --- invariant monitors --- *)

let t0 = Simtime.of_ns 1_000

let test_monitor_catches_violations () =
  let mon = Obs.Monitor.create () in
  let obs = Obs.Monitor.observe mon t0 in
  (* TCAM occupancy over capacity. *)
  obs (Trace.Tcam_install { tenant; entries = 4; used = 12; capacity = 8 });
  (* Sequence regression: 7 then 7 again on the same server. *)
  obs
    (Trace.Rule_pushed
       { server = "s0"; pattern = sample_pattern; push = `Offload; seq = 7 });
  obs
    (Trace.Rule_pushed
       { server = "s0"; pattern = sample_pattern; push = `Demote; seq = 7 });
  (* A different server may reuse the number (rack-global seq space,
     per-server subsequence). *)
  obs
    (Trace.Rule_pushed
       { server = "s1"; pattern = sample_pattern; push = `Offload; seq = 7 });
  (* FPS split handing out more than total + 2*overflow. *)
  obs
    (Trace.Fps_split
       {
         vm_ip = vm1;
         direction = Trace.Tx;
         soft_bps = 9e8;
         hard_bps = 9e8;
         total_bps = 1e9;
         overflow_bps = 1e8;
       });
  (* Installed-without-Pending: span ends that never began. *)
  obs (Trace.Span_end { span = 404; outcome = "installed" });
  (* Migration commit without prepare. *)
  obs (Trace.Migration_stage { vm_ip = vm2; stage = `Commit });
  let count name =
    Option.value (List.assoc_opt name (Obs.Monitor.counts mon)) ~default:0
  in
  checki "tcam violation" 1 (count "tcam_capacity");
  checki "seq violation" 1 (count "seq_monotonic");
  checki "fps violation" 1 (count "fps_conservation");
  checki "span violation" 1 (count "span_pairing");
  checki "migration violation" 1 (count "migration_order");
  checki "total" 5 (Obs.Monitor.total mon)

let test_monitor_cache_coherence () =
  let mon = Obs.Monitor.create () in
  let obs = Obs.Monitor.observe mon t0 in
  (* Agreeing hit, a miss, and a well-formed invalidate are all legal. *)
  obs
    (Trace.Cache_hit
       {
         vif = "vif0";
         flow = sample_pattern;
         tier = `Exact;
         cached = "allow/q0/-";
         fresh = "allow/q0/-";
       });
  obs (Trace.Cache_miss { vif = "vif0"; flow = sample_pattern });
  obs
    (Trace.Cache_invalidate
       { vif = "vif0"; reason = "policy_change"; dropped = 3; exact = 1; megaflow = 2 });
  checki "clean so far" 0 (Obs.Monitor.total mon);
  (* A cached verdict disagreeing with the fresh evaluation is the
     staleness bug this monitor exists for. *)
  obs
    (Trace.Cache_hit
       {
         vif = "vif0";
         flow = sample_pattern;
         tier = `Megaflow;
         cached = "allow/q0/-";
         fresh = "deny/q0/-";
       });
  obs
    (Trace.Cache_invalidate
       { vif = "vif0"; reason = "idle"; dropped = -1; exact = 0; megaflow = 0 });
  let count name =
    Option.value (List.assoc_opt name (Obs.Monitor.counts mon)) ~default:0
  in
  checki "coherence violations" 2 (count "cache_coherence");
  checki "total" 2 (Obs.Monitor.total mon)

let test_monitor_accepts_legal_stream () =
  let mon = Obs.Monitor.create ~mode:Obs.Monitor.Strict () in
  let obs = Obs.Monitor.observe mon t0 in
  obs (Trace.Tcam_install { tenant; entries = 4; used = 8; capacity = 8 });
  obs (Trace.Tcam_evict { tenant; entries = 4; used = 4; capacity = 8 });
  obs
    (Trace.Rule_pushed
       { server = "s0"; pattern = sample_pattern; push = `Offload; seq = 3 });
  obs
    (Trace.Rule_pushed
       { server = "s0"; pattern = sample_pattern; push = `Demote; seq = 9 });
  obs
    (Trace.Fps_split
       {
         vm_ip = vm1;
         direction = Trace.Rx;
         soft_bps = 6e8;
         hard_bps = 6e8;
         total_bps = 1e9;
         overflow_bps = 1e8;
       });
  obs
    (Trace.Span_begin
       { span = 1; parent = 0; kind = "offload"; name = "x"; track = "tor" });
  obs (Trace.Span_end { span = 1; outcome = "deselected" });
  obs (Trace.Migration_stage { vm_ip = vm2; stage = `Prepare });
  obs (Trace.Migration_stage { vm_ip = vm2; stage = `Abort });
  obs (Trace.Migration_stage { vm_ip = vm2; stage = `Prepare });
  obs (Trace.Migration_stage { vm_ip = vm2; stage = `Commit });
  checki "no violations" 0 (Obs.Monitor.total mon);
  checki "events checked" 11 (Obs.Monitor.events_checked mon)

let test_monitor_strict_raises () =
  let mon = Obs.Monitor.create ~mode:Obs.Monitor.Strict () in
  checkb "strict raises on first violation" true
    (match
       Obs.Monitor.observe mon t0
         (Trace.Tcam_install { tenant; entries = 1; used = 9; capacity = 8 })
     with
    | exception Obs.Monitor.Strict_violation v ->
        v.Obs.Monitor.monitor = "tcam_capacity"
    | () -> false)

(* Monitors attached via the tee see the same live run the sink sees,
   and injected violations through a callback sink are caught. *)
let test_monitor_on_live_run_clean () =
  Trace.disable ();
  let mon = Obs.Monitor.create () in
  Obs.Monitor.attach mon;
  let tb, rm, client = hot_testbed () in
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  Workloads.Transactions.Client.stop client;
  Experiments.Testbed.run_for tb ~seconds:3.0;
  Trace.disable ();
  checkb "saw events" true (Obs.Monitor.events_checked mon > 0);
  if Obs.Monitor.total mon > 0 then
    Alcotest.failf "clean run produced violations:\n%s" (Obs.Monitor.report mon)

(* The full table4 pipeline (two sub-experiments, migrations included)
   also runs monitor-clean: every emitted event satisfies the
   invariants end to end. *)
let test_monitor_clean_table4 () =
  Trace.disable ();
  let saved = !Experiments.Memcached_eval.requests_scale in
  Experiments.Memcached_eval.requests_scale := 0.02;
  Fun.protect
    ~finally:(fun () ->
      Experiments.Memcached_eval.requests_scale := saved;
      Trace.disable ())
    (fun () ->
      let mon = Obs.Monitor.create () in
      Obs.Monitor.attach mon;
      ignore (Experiments.Fastrak_eval.run ());
      Trace.disable ();
      checkb "saw events" true (Obs.Monitor.events_checked mon > 0);
      if Obs.Monitor.total mon > 0 then
        Alcotest.failf "table4 produced violations:\n%s"
          (Obs.Monitor.report mon))

(* --- Perfetto export --- *)

let test_export_nesting_and_validation () =
  let span ~t ~span ~parent ~kind ~name ~track =
    (Simtime.of_ns t, Trace.Span_begin { span; parent; kind; name; track })
  in
  let fin ~t ~span ~outcome = (Simtime.of_ns t, Trace.Span_end { span; outcome }) in
  let events =
    [
      (* Parent enclosing a child (same track: nested on one lane). *)
      span ~t:100 ~span:1 ~parent:0 ~kind:"offload" ~name:"A" ~track:"tor";
      span ~t:200 ~span:2 ~parent:1 ~kind:"install" ~name:"B" ~track:"tor";
      (* Overlapping-but-not-nested span: must land on another lane. *)
      span ~t:300 ~span:3 ~parent:0 ~kind:"offload" ~name:"C" ~track:"tor";
      fin ~t:400 ~span:2 ~outcome:"installed";
      (* A span on another track, plus instants. *)
      span ~t:450 ~span:4 ~parent:2 ~kind:"directive" ~name:"D" ~track:"server0";
      ( Simtime.of_ns 500,
        Trace.Ctrl_retry { server = "server0"; seq = 1; attempt = 2; span = 4 } );
      (Simtime.of_ns 550, Trace.Ctrl_drop { channel = "server0.uplink" });
      fin ~t:600 ~span:1 ~outcome:"deselected";
      fin ~t:700 ~span:3 ~outcome:"deselected";
      (* Span 4 is never finished: closed synthetically at 800. *)
      ( Simtime.of_ns 800,
        Trace.Tcam_install { tenant; entries = 1; used = 3; capacity = 8 } );
    ]
  in
  let chrome = Obs.Export.convert events in
  (match Obs.Export.validate chrome with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "export does not validate: %s" e);
  let spans_of name =
    List.find
      (fun e -> e.Obs.Export.ph = "B" && e.Obs.Export.name = name)
      chrome
  in
  let a = spans_of "A" and b = spans_of "B" and c = spans_of "C" in
  checki "child shares parent lane" a.Obs.Export.tid b.Obs.Export.tid;
  checkb "overlap gets its own lane" true (c.Obs.Export.tid <> a.Obs.Export.tid);
  checkb "lane 0 reserved for instants" true
    (List.for_all
       (fun e -> e.Obs.Export.ph <> "B" || e.Obs.Export.tid > 0)
       chrome);
  (* The unterminated span is closed at the final trace instant. *)
  let d_end =
    List.find
      (fun e -> e.Obs.Export.ph = "E" && e.Obs.Export.name = "D")
      chrome
  in
  checkb "unterminated closed at trace end" true
    (Float.abs (d_end.Obs.Export.ts_us -. 0.8) < 1e-9);
  (* Instants and the counter made it through. *)
  checkb "retry instant" true
    (List.exists
       (fun e -> e.Obs.Export.ph = "i" && e.Obs.Export.name = "retry seq=1")
       chrome);
  checkb "tcam counter" true
    (List.exists (fun e -> e.Obs.Export.ph = "C") chrome);
  (* Tamper check: the validator rejects a broken stream. *)
  let broken =
    List.filter
      (fun e -> not (e.Obs.Export.ph = "E" && e.Obs.Export.name = "B"))
      chrome
  in
  checkb "validator rejects unclosed B" true
    (match Obs.Export.validate broken with Error _ -> true | Ok _ -> false)

let test_export_of_live_run_round_trips () =
  Trace.disable ();
  Obs.Span.reset ();
  let dir = Filename.temp_file "fastrak_trace" "" in
  Sys.remove dir;
  let jsonl = dir ^ ".jsonl" and json = dir ^ ".json" in
  let oc = open_out jsonl in
  Trace.use_jsonl oc;
  let tb, rm, client = hot_testbed () in
  Fastrak.Rule_manager.start rm;
  Experiments.Testbed.run_for tb ~seconds:1.5;
  Workloads.Transactions.Client.stop client;
  Experiments.Testbed.run_for tb ~seconds:3.0;
  Trace.disable ();
  close_out oc;
  (match Obs.Export.convert_file ~input:jsonl ~output:json with
  | Error e -> Alcotest.failf "convert_file failed: %s" e
  | Ok { Obs.Export.events_in; skipped; events_out } ->
      checkb "events in" true (events_in > 0);
      checki "no malformed lines" 0 skipped;
      checkb "events out" true (events_out > 0);
      (* Spans from the live control plane made it into the export.
         Per-packet cache_hit/cache_miss events dominate [events_in]
         and are deliberately not exported, so compare against a fixed
         floor rather than a fraction of the input. *)
      checkb "has duration events" true (events_out > 20));
  (* The written file itself re-parses and passes the validator. *)
  (match Obs.Export.validate_file json with
  | Ok n -> checkb "validated events" true (n > 0)
  | Error e -> Alcotest.failf "exported file does not validate: %s" e);
  Sys.remove jsonl;
  Sys.remove json

(* --- metrics registry --- *)

(* An un-observed summary must export min/max as JSON null, not a
   fabricated 0.0 a dashboard would read as a real measurement. *)
let test_empty_summary_renders_null () =
  let registry = Metrics.create () in
  let s = Metrics.summary ~registry "latency.us" in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let json = Metrics.to_json (Metrics.snapshot ~registry ()) in
  checkb "empty min renders null" true (contains json "\"min\":null");
  checkb "empty max renders null" true (contains json "\"max\":null");
  Metrics.observe s 2.5;
  let json' = Metrics.to_json (Metrics.snapshot ~registry ()) in
  checkb "observed min is a number" true (contains json' "\"min\":2.5");
  checkb "no null once observed" false (contains json' "null")

let test_registry_kinds_and_diff () =
  let registry = Metrics.create () in
  let c = Metrics.counter ~registry "x.count" in
  Metrics.incr c;
  Metrics.add c 4;
  let g = Metrics.gauge ~registry "x.gauge" in
  Metrics.set_gauge g 2.5;
  let s = Metrics.summary ~registry "x.summary" in
  Metrics.observe s 1.0;
  Metrics.observe s 3.0;
  (* Same name and kind: the same instrument comes back. *)
  Metrics.incr (Metrics.counter ~registry "x.count");
  checki "counter accumulated" 6 (Metrics.counter_value c);
  (* Same name, different kind: refused. *)
  checkb "kind clash raises" true
    (match Metrics.gauge ~registry "x.count" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let before = Metrics.snapshot ~registry () in
  Metrics.add c 10;
  Metrics.observe s 5.0;
  let after = Metrics.snapshot ~registry () in
  let delta = Metrics.diff ~before ~after in
  checkb "unchanged gauge dropped" true (List.assoc_opt "x.gauge" delta = None);
  (match List.assoc_opt "x.count" delta with
  | Some (Metrics.Counter_v 10) -> ()
  | _ -> Alcotest.fail "counter delta wrong");
  (match List.assoc_opt "x.summary" delta with
  | Some (Metrics.Summary_v { count = 1; sum; _ }) ->
      checkb "summary delta sum" true (Float.abs (sum -. 5.0) < 1e-9)
  | _ -> Alcotest.fail "summary delta wrong");
  (* Dumps include every instrument. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let json = Metrics.to_json (Metrics.snapshot ~registry ()) in
  checkb "json has counter" true (contains json "\"x.count\": 16");
  let csv = Metrics.to_csv (Metrics.snapshot ~registry ()) in
  checkb "csv has gauge row" true (contains csv "x.gauge,gauge,1,2.5")

(* --- Flight recorder --- *)

module Flight = Obs.Flight

(* Distinct, recognisable events for ring-order assertions. *)
let numbered_event i = Trace.Epoch_tick { me = "ring.me"; epoch = i; interval = 0 }

let epoch_of = function
  | Trace.Epoch_tick { epoch; _ } -> epoch
  | _ -> Alcotest.fail "unexpected event shape in ring"

let test_flight_wraparound () =
  let ring = Flight.create ~capacity:4 () in
  checki "empty ring" 0 (List.length (Flight.events ring));
  for i = 1 to 10 do
    Flight.record ring (Simtime.of_ns (i * 1000)) (numbered_event i)
  done;
  (* Overwrites the oldest: the survivors are 7..10, oldest first. *)
  let got = List.map (fun (_, ev) -> epoch_of ev) (Flight.events ring) in
  Alcotest.(check (list int)) "last capacity events, oldest first"
    [ 7; 8; 9; 10 ] got;
  List.iteri
    (fun i (at, _) ->
      checki (Printf.sprintf "stamp %d" i) ((7 + i) * 1000) (Simtime.to_ns at))
    (Flight.events ring);
  Alcotest.(check (list int)) "last n" [ 9; 10 ]
    (List.map (fun (_, ev) -> epoch_of ev) (Flight.last ring 2));
  Flight.clear ring;
  checki "cleared" 0 (List.length (Flight.events ring))

let test_flight_dump_is_valid_trace () =
  let ring = Flight.create ~capacity:8 () in
  List.iteri
    (fun i ev -> Flight.record ring (Simtime.of_ns ((i + 1) * 777)) ev)
    sample_events;
  let path = Filename.temp_file "flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let n = Flight.dump_jsonl ring oc in
      close_out oc;
      checki "dump count = ring size" (List.length (Flight.events ring)) n;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let parsed = List.rev_map Trace.of_jsonl !lines in
      checkb "every dumped line re-parses" true
        (List.for_all Option.is_some parsed))

(* Compact codec: deterministic round trip over the full constructor
   catalogue... *)
let test_flight_compact_round_trip () =
  let ring = Flight.create ~capacity:64 () in
  List.iteri
    (fun i ev -> Flight.record ring (Simtime.of_ns ((i + 1) * 999_999)) ev)
    sample_events;
  match Flight.of_compact (Flight.to_compact ring) with
  | None -> Alcotest.fail "compact snapshot did not decode"
  | Some events ->
      checki "entry count" (List.length (Flight.events ring))
        (List.length events);
      List.iter2
        (fun (at, ev) (at', ev') ->
          checkb "stamp round-trips" true (Simtime.equal at at');
          checkb "event round-trips" true (ev = ev'))
        (Flight.events ring) events

(* ...and a property over randomised payloads: encode . decode = id
   for every constructor with arbitrary ints (full zigzag-varint
   range), strings, IPs, patterns and finite floats. *)
let prop_flight_compact_round_trip =
  let open QCheck2.Gen in
  let gen_str = small_string ~gen:printable in
  let gen_ip =
    map2
      (fun a b -> Ipv4.of_string (Printf.sprintf "10.%d.%d.%d" (a mod 250) (b mod 250) ((a + b) mod 250)))
      small_nat small_nat
  in
  let gen_tenant = map (fun n -> Netcore.Tenant.of_int (1 + (n mod 1000))) small_nat in
  let gen_float =
    map (fun f -> if Float.is_nan f then 0.5 else f) float
  in
  let gen_proto =
    oneof
      [
        return Fkey.Tcp;
        return Fkey.Udp;
        return Fkey.Icmp;
        map (fun n -> Fkey.Other (n mod 200)) small_nat;
      ]
  in
  let gen_pattern =
    let* src_ip = option gen_ip in
    let* dst_ip = option gen_ip in
    let* src_port = option (int_range 0 65535) in
    let* dst_port = option (int_range 0 65535) in
    let* proto = option gen_proto in
    let* tenant = option gen_tenant in
    return { Fkey.Pattern.src_ip; dst_ip; src_port; dst_port; proto; tenant }
  in
  let gen_event =
    oneof
      [
        (let* pattern = gen_pattern and* tenant = gen_tenant and* vm_ip = gen_ip
         and* server = gen_str and* score = gen_float and* tcam_entries = int in
         return (Trace.Flow_promoted { pattern; tenant; vm_ip; server; score; tcam_entries }));
        (let* pattern = gen_pattern and* tenant = gen_tenant and* vm_ip = gen_ip
         and* server = gen_str and* reason = gen_str in
         return (Trace.Flow_demoted { pattern; tenant; vm_ip; server; reason }));
        (let* tenant = gen_tenant and* entries = int and* used = int and* capacity = int in
         return (Trace.Tcam_install { tenant; entries; used; capacity }));
        (let* tenant = gen_tenant and* entries = int and* used = int and* capacity = int in
         return (Trace.Tcam_evict { tenant; entries; used; capacity }));
        (let* vm_ip = gen_ip
         and* direction = oneof [ return Trace.Tx; return Trace.Rx ]
         and* soft_bps = gen_float and* hard_bps = gen_float
         and* total_bps = gen_float and* overflow_bps = gen_float in
         return
           (Trace.Fps_split
              { vm_ip; direction; soft_bps; hard_bps; total_bps; overflow_bps }));
        (let* vm_ip = gen_ip and* pattern = gen_pattern
         and* path = oneof [ return Trace.Software; return Trace.Express ] in
         return (Trace.Path_transition { vm_ip; pattern; path }));
        (let* server = gen_str and* pattern = gen_pattern
         and* push = oneof [ return `Offload; return `Demote ] and* seq = int in
         return (Trace.Rule_pushed { server; pattern; push; seq }));
        (let* me = gen_str and* epoch = int and* interval = int in
         return (Trace.Epoch_tick { me; epoch; interval }));
        (let* channel = gen_str in
         return (Trace.Ctrl_drop { channel }));
        (let* server = gen_str and* seq = int and* attempt = int and* span = int in
         return (Trace.Ctrl_retry { server; seq; attempt; span }));
        (let* server = gen_str and* alive = bool in
         return (Trace.Peer_state { server; alive }));
        (let* lane = gen_str and* up = bool in
         return (Trace.Lane_state { lane; up }));
        (let* tenant = gen_tenant and* kind = gen_str and* entries = int in
         return (Trace.Tcam_error { tenant; kind; entries }));
        (let* flow = gen_str and* sent = int and* acked = int in
         return (Trace.Flow_progress { flow; sent; acked }));
        (let* vm_ip = gen_ip
         and* stage = oneof [ return `Prepare; return `Commit; return `Abort ] in
         return (Trace.Migration_stage { vm_ip; stage }));
        (let* span = int and* parent = int and* kind = gen_str
         and* name = gen_str and* track = gen_str in
         return (Trace.Span_begin { span; parent; kind; name; track }));
        (let* span = int and* outcome = gen_str in
         return (Trace.Span_end { span; outcome }));
        (let* vif = gen_str and* flow = gen_pattern
         and* tier = oneof [ return `Exact; return `Megaflow ]
         and* cached = gen_str and* fresh = gen_str in
         return (Trace.Cache_hit { vif; flow; tier; cached; fresh }));
        (let* vif = gen_str and* flow = gen_pattern in
         return (Trace.Cache_miss { vif; flow }));
        (let* vif = gen_str and* reason = gen_str and* dropped = int
         and* exact = int and* megaflow = int in
         return (Trace.Cache_invalidate { vif; reason; dropped; exact; megaflow }));
      ]
  in
  let gen =
    QCheck2.Gen.(pair (small_list gen_event) (int_range 0 1_000_000_000))
  in
  QCheck2.Test.make ~name:"flight compact codec round-trips" ~count:300 gen
    (fun (events, t0) ->
      let ring = Flight.create ~capacity:(1 + List.length events) () in
      List.iteri
        (fun i ev -> Flight.record ring (Simtime.of_ns (t0 + (i * 17))) ev)
        events;
      match Flight.of_compact (Flight.to_compact ring) with
      | None -> QCheck2.Test.fail_report "snapshot did not decode"
      | Some decoded ->
          decoded = Flight.events ring)

let test_flight_compact_rejects_garbage () =
  checkb "empty input" true (Flight.of_compact "" = None);
  let ring = Flight.create ~capacity:4 () in
  Flight.record ring (Simtime.of_ns 5) (numbered_event 1);
  let ok = Flight.to_compact ring in
  checkb "valid decodes" true (Flight.of_compact ok <> None);
  let truncated = String.sub ok 0 (String.length ok - 1) in
  checkb "truncation rejected" true (Flight.of_compact truncated = None);
  checkb "trailing bytes rejected" true (Flight.of_compact (ok ^ "x") = None)

(* Installed recorder: the tee records every emitted event, and a
   monitor violation carries the last few as context. *)
let test_flight_install_and_monitor_context () =
  let ring = Flight.create ~capacity:16 () in
  let mon = Obs.Monitor.create ~mode:Obs.Monitor.Warn () in
  Obs.Monitor.attach mon;
  (* After the monitor: the tee runs newest-first, so the ring already
     holds the offending event when the monitor snapshots context. *)
  Flight.install ring;
  Fun.protect
    ~finally:(fun () ->
      Flight.uninstall ();
      Trace.disable ())
    (fun () ->
      let now = Simtime.of_ns 1_000 in
      Trace.emit ~now (numbered_event 1);
      Trace.emit ~now (numbered_event 2);
      (* Impossible TCAM occupancy: used > capacity trips tcam_capacity. *)
      Trace.emit ~now
        (Trace.Tcam_install { tenant; entries = 4; used = 99; capacity = 8 });
      checki "ring saw every event" 3 (List.length (Flight.events ring));
      match Obs.Monitor.violations mon with
      | [ v ] ->
          checkb "violation has context" true (v.Obs.Monitor.context <> []);
          checkb "offending event in context" true
            (List.exists
               (fun (_, ev) ->
                 match ev with Trace.Tcam_install _ -> true | _ -> false)
               v.Obs.Monitor.context);
          checkb "context renders" true
            (String.length (Obs.Monitor.context_to_string v) > 0)
      | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs)))

(* The crash dump is deterministic: two identical fabric-chaos runs
   freeze byte-identical compact snapshots at the scripted crash. *)
let test_flight_crash_dump_deterministic () =
  let saved = !Experiments.Fabric_chaos.schedule_spec in
  let run_once () =
    (* Span ids are allocated process-globally; restart them so both
       runs label identical spans identically. *)
    Obs.Span.reset ();
    let ring = Flight.create ~capacity:256 () in
    Flight.install ring;
    Fun.protect
      ~finally:(fun () ->
        Flight.uninstall ();
        Trace.disable ())
      (fun () ->
        Experiments.Fabric_chaos.schedule_spec := "none";
        let cfg =
          {
            Experiments.Fabric_chaos.default_config with
            Experiments.Fabric_chaos.racks = 2;
            crash_at = 2.0;
            restart_at = 2.3;
          }
        in
        Experiments.Fabric_chaos.run ~config:cfg ())
  in
  Fun.protect
    ~finally:(fun () -> Experiments.Fabric_chaos.schedule_spec := saved)
    (fun () ->
      let r1 = run_once () in
      let r2 = run_once () in
      match
        (r1.Experiments.Fabric_chaos.crash_flight,
         r2.Experiments.Fabric_chaos.crash_flight)
      with
      | Some c1, Some c2 ->
          checkb "snapshots byte-identical" true (String.equal c1 c2);
          (match Flight.of_compact c1 with
          | Some events -> checkb "snapshot non-empty" true (events <> [])
          | None -> Alcotest.fail "crash snapshot did not decode")
      | _ -> Alcotest.fail "crash did not freeze a flight snapshot")

(* --- Labeled metric families --- *)

let test_labeled_cardinality_bound () =
  let registry = Metrics.create () in
  let fam =
    Metrics.counter_family ~registry ~max_series:2 ~label:"tenant" "t.hits"
  in
  Metrics.incr (Metrics.labeled_counter fam 1);
  Metrics.incr (Metrics.labeled_counter fam 2);
  Metrics.incr (Metrics.labeled_counter fam 3);
  Metrics.incr (Metrics.labeled_counter fam 4);
  Metrics.incr (Metrics.labeled_counter fam 1);
  let name_of k = Printf.sprintf "t.hits{tenant=\"%d\"}" k in
  checkb "series 1" true (Metrics.find ~registry (name_of 1) = Some (Metrics.Counter_v 2));
  checkb "series 2" true (Metrics.find ~registry (name_of 2) = Some (Metrics.Counter_v 1));
  checkb "key 3 not its own series" true (Metrics.find ~registry (name_of 3) = None);
  (* Keys beyond the bound share the overflow series. *)
  checkb "overflow absorbs the rest" true
    (Metrics.find ~registry "t.hits{tenant=\"__other__\"}"
    = Some (Metrics.Counter_v 2));
  Alcotest.(check (list (pair int int)))
    "values exclude overflow" [ (1, 2); (2, 1) ]
    (Metrics.labeled_counter_values fam);
  checkb "family enumerable" true
    (Metrics.family_names ~registry () = [ ("t.hits", "tenant") ])

let test_labeled_escaping_and_reopen () =
  let registry = Metrics.create () in
  let fam =
    Metrics.counter_family ~registry ~label:"name"
      ~render:(fun _ -> "evil\"}\\x\ny")
      "t.esc"
  in
  Metrics.incr (Metrics.labeled_counter fam 0);
  let expected = "t.esc{name=\"evil\\\"\\}\\\\x\\ny\"}" in
  checkb "hostile render escaped" true
    (Metrics.find ~registry expected = Some (Metrics.Counter_v 1));
  checks "base_name strips the label suffix" "t.esc" (Metrics.base_name expected);
  checks "plain names pass through" "t.esc" (Metrics.base_name "t.esc");
  (* Re-opening returns the same handle (shared key cache)... *)
  let fam' =
    Metrics.counter_family ~registry ~label:"name" ~render:string_of_int "t.esc"
  in
  Metrics.incr (Metrics.labeled_counter fam' 0);
  checkb "shared series through both handles" true
    (Metrics.find ~registry expected = Some (Metrics.Counter_v 2));
  (* ...and a conflicting label is refused. *)
  checkb "label mismatch refused" true
    (try
       ignore (Metrics.counter_family ~registry ~label:"other" "t.esc");
       false
     with Invalid_argument _ -> true)

(* --- SLO scoreboard --- *)

let test_slo_scoreboard_and_breach () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i =
      i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
    in
    go 0
  in
  Obs.Slo.reset ();
  let clock = ref Simtime.zero in
  Trace.set_clock (fun () -> !clock);
  Fun.protect
    ~finally:(fun () ->
      Obs.Slo.reset ();
      Trace.set_clock (fun () -> Simtime.zero))
    (fun () ->
      (* Tenant 1: contracted 1 Mbit/s, delivers 2 Mbit over 1 s — a
         2x overshoot, far beyond the +25% tolerance. *)
      Obs.Slo.add_contract ~tenant:1 ~tx_bps:1e6 ();
      clock := Simtime.of_sec 1.0;
      Obs.Slo.observe_goodput ~tenant:1 125_000;
      clock := Simtime.of_sec 2.0;
      Obs.Slo.observe_goodput ~tenant:1 125_000;
      (* Tenant 2: within contract, but misses its p99 target. *)
      Obs.Slo.add_contract ~tenant:2 ~tx_bps:1e9 ~p99_us:100.0 ();
      Obs.Slo.observe_goodput ~tenant:2 1000;
      clock := Simtime.of_sec 3.0;
      Obs.Slo.observe_goodput ~tenant:2 1000;
      for _ = 1 to 100 do
        Obs.Slo.observe_latency_us ~tenant:2 900.0
      done;
      match Obs.Slo.scoreboard () with
      | [ r1; r2 ] ->
          checki "tenant order" 1 r1.Obs.Slo.tenant;
          checkb "rate breach flagged" true (not r1.Obs.Slo.rate_ok);
          checkb "tenant 1 latency vacuously ok" true r1.Obs.Slo.latency_ok;
          checkb "achieved ~2 Mbit/s" true
            (Float.abs (r1.Obs.Slo.achieved_bps -. 2e6) < 1.0);
          checkb "tenant 2 rate ok" true r2.Obs.Slo.rate_ok;
          checkb "p99 breach flagged" true (not r2.Obs.Slo.latency_ok);
          (* Breaches surface through a monitor as tenant_slo. *)
          let mon = Obs.Monitor.create ~mode:Obs.Monitor.Warn () in
          Obs.Slo.check mon ~at:!clock;
          checki "one violation per breach" 2
            (List.length (Obs.Monitor.violations mon));
          checkb "report renders both verdicts" true
            (let rep = Obs.Slo.report () in
             contains rep "RATE BREACH" && contains rep "P99 BREACH")
      | rows ->
          Alcotest.fail
            (Printf.sprintf "expected 2 scoreboard rows, got %d"
               (List.length rows)))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "jsonl round trip" test_jsonl_round_trip;
    t "jsonl rejects garbage" test_jsonl_rejects_garbage;
    t "pattern codec" test_pattern_codec;
    t "live run traces and metrics" test_trace_and_metrics_of_live_run;
    t "no-op sink identical results" test_noop_sink_identical_results;
    t "registry kinds and diff" test_registry_kinds_and_diff;
    t "empty summary renders null" test_empty_summary_renders_null;
    QCheck_alcotest.to_alcotest prop_of_jsonl_corruption_safe;
    t "jsonl rejects nan payloads" test_of_jsonl_nan_payloads;
    t "p2 quantiles" test_p2_quantiles;
    t "timeseries rows and output" test_timeseries_rows_and_output;
    t "monitor catches violations" test_monitor_catches_violations;
    t "monitor cache coherence" test_monitor_cache_coherence;
    t "monitor accepts legal stream" test_monitor_accepts_legal_stream;
    t "monitor strict raises" test_monitor_strict_raises;
    t "monitor clean on live run" test_monitor_on_live_run_clean;
    t "monitor clean on table4" test_monitor_clean_table4;
    t "export nesting and validation" test_export_nesting_and_validation;
    t "export live run round trips" test_export_of_live_run_round_trips;
    t "flight ring wraparound" test_flight_wraparound;
    t "flight dump is valid trace" test_flight_dump_is_valid_trace;
    t "flight compact round trip" test_flight_compact_round_trip;
    QCheck_alcotest.to_alcotest prop_flight_compact_round_trip;
    t "flight compact rejects garbage" test_flight_compact_rejects_garbage;
    t "flight install and monitor context" test_flight_install_and_monitor_context;
    t "flight crash dump deterministic" test_flight_crash_dump_deterministic;
    t "labeled cardinality bound" test_labeled_cardinality_bound;
    t "labeled escaping and reopen" test_labeled_escaping_and_reopen;
    t "slo scoreboard and breach" test_slo_scoreboard_and_breach;
  ]
