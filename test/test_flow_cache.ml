(* Tests for the two-tier datapath flow cache: tiering, megaflow masks,
   LRU bounds, coherence with live policy mutations, and a QCheck
   equivalence property against the uncached classifier. *)

module Fkey = Netcore.Fkey
module Pattern = Fkey.Pattern
module Simtime = Dcsim.Simtime
module Cache = Vswitch.Flow_cache

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let tenant = Netcore.Tenant.of_int 7
let vm_ip = Netcore.Ipv4.of_string "10.7.0.1"
let peer_ip = Netcore.Ipv4.of_string "10.7.0.2"

let flow ?(sport = 1000) ?(dport = 80) () =
  Fkey.make ~src_ip:vm_ip ~dst_ip:peer_ip ~src_port:sport ~dst_port:dport
    ~proto:Fkey.Tcp ~tenant

let t_ms ms = Simtime.of_ms ms

let small_config =
  {
    Cache.exact_capacity = 4;
    megaflow_capacity = 8;
    idle_timeout = Simtime.span_sec 1.0;
    revalidate_period = Simtime.span_ms 100.0;
  }

let allow_all_policy () =
  let p = Rules.Policy.create ~tenant ~vm_ip () in
  Rules.Policy.add_acl p (Rules.Security_rule.make ~priority:5 Pattern.any Allow);
  p

let deny_port_rule port =
  Rules.Security_rule.make ~priority:9
    { Pattern.any with Pattern.dst_port = Some port }
    Deny

let test_miss_install_hit () =
  let p = allow_all_policy () in
  let c = Cache.create ~config:small_config ~name:"t" ~policy:p () in
  let f = flow () in
  checkb "first lookup misses" true (Cache.lookup c f ~now:(t_ms 0.0) = None);
  let v = Cache.install c f ~now:(t_ms 0.0) in
  checkb "allowed" true (v.Rules.Policy.action = Rules.Security_rule.Allow);
  (match Cache.lookup c f ~now:(t_ms 1.0) with
  | Some (v', Cache.Exact) -> checkb "same verdict" true (v' = v)
  | Some (_, Cache.Megaflow) -> Alcotest.fail "expected the exact tier"
  | None -> Alcotest.fail "expected a hit");
  checki "exact hits" 1 (Cache.exact_hits c);
  checki "misses" 1 (Cache.misses c)

let test_megaflow_absorbs_flows () =
  let p = allow_all_policy () in
  let c = Cache.create ~config:small_config ~name:"t" ~policy:p () in
  ignore (Cache.install c (flow ()) ~now:(t_ms 0.0));
  checki "one megaflow installed" 1 (Cache.megaflow_count c);
  (* The deciding allow-all examined no field, so its megaflow is fully
     wildcarded: every other flow of the VIF hits it first try. *)
  for i = 1 to 20 do
    match Cache.lookup c (flow ~sport:(2000 + i) ()) ~now:(t_ms (float_of_int i)) with
    | Some (_, Cache.Megaflow) -> ()
    | Some (_, Cache.Exact) -> Alcotest.fail "fresh flow cannot hit the exact tier"
    | None -> Alcotest.fail "megaflow should absorb the flow"
  done;
  checki "still one megaflow" 1 (Cache.megaflow_count c);
  checkb "exact tier stays bounded" true (Cache.exact_count c <= 4);
  checki "all were megaflow hits" 20 (Cache.megaflow_hits c)

let test_mask_specificity () =
  let p = allow_all_policy () in
  Rules.Policy.add_acl p (deny_port_rule 6666);
  let c = Cache.create ~config:small_config ~name:"t" ~policy:p () in
  let v80 = Cache.install c (flow ~dport:80 ()) ~now:(t_ms 0.0) in
  checkb "port 80 allowed" true (v80.Rules.Policy.action = Rules.Security_rule.Allow);
  (* The deny rule examined dst_port, so the port-80 megaflow is masked
     on dst_port and must not absorb port-6666 traffic. *)
  (match Cache.lookup c (flow ~dport:6666 ()) ~now:(t_ms 1.0) with
  | None -> ()
  | Some _ -> Alcotest.fail "port 6666 must not hit the port-80 megaflow");
  let v6666 = Cache.install c (flow ~dport:6666 ()) ~now:(t_ms 1.0) in
  checkb "port 6666 denied" true
    (v6666.Rules.Policy.action = Rules.Security_rule.Deny);
  (* src_port was never examined, so another src port on dst 80 is
     absorbed by the existing megaflow. *)
  (match Cache.lookup c (flow ~sport:4242 ~dport:80 ()) ~now:(t_ms 2.0) with
  | Some (v, Cache.Megaflow) ->
      checkb "absorbed flow allowed" true
        (v.Rules.Policy.action = Rules.Security_rule.Allow)
  | Some (_, Cache.Exact) -> Alcotest.fail "expected the megaflow tier"
  | None -> Alcotest.fail "src_port is unmasked: flow should be absorbed")

let test_lru_eviction_order () =
  let p = allow_all_policy () in
  let c = Cache.create ~config:small_config ~name:"t" ~policy:p () in
  let fl i = flow ~sport:(1000 + i) () in
  for i = 1 to 4 do
    ignore (Cache.install c (fl i) ~now:(t_ms (float_of_int i)))
  done;
  checki "at capacity" 4 (Cache.exact_count c);
  (* Touch flow 1 so flow 2 becomes the least recently used. *)
  ignore (Cache.lookup c (fl 1) ~now:(t_ms 10.0));
  ignore (Cache.install c (fl 5) ~now:(t_ms 11.0));
  checki "still bounded" 4 (Cache.exact_count c);
  checkb "recently used survived" true (Cache.mem_exact c (fl 1));
  checkb "lru victim evicted" false (Cache.mem_exact c (fl 2));
  checkb "eviction counted" true (Cache.evictions c >= 1)

let test_policy_change_flushes () =
  let p = allow_all_policy () in
  let c = Cache.create ~config:small_config ~name:"t" ~policy:p () in
  let f = flow ~dport:6666 () in
  let v = Cache.install c f ~now:(t_ms 0.0) in
  checkb "initially allowed" true (v.Rules.Policy.action = Rules.Security_rule.Allow);
  Rules.Policy.add_acl p (deny_port_rule 6666);
  (match Cache.lookup c f ~now:(t_ms 1.0) with
  | None -> ()
  | Some _ -> Alcotest.fail "stale verdict served after policy change");
  checkb "flush counted as invalidation" true (Cache.invalidations c >= 1);
  let v' = Cache.install c f ~now:(t_ms 1.0) in
  checkb "fresh verdict denies" true
    (v'.Rules.Policy.action = Rules.Security_rule.Deny)

let test_revalidate_evicts_idle () =
  let p = allow_all_policy () in
  let c = Cache.create ~config:small_config ~name:"t" ~policy:p () in
  ignore (Cache.install c (flow ~sport:1001 ()) ~now:(t_ms 0.0));
  ignore (Cache.install c (flow ~sport:1002 ()) ~now:(t_ms 0.0));
  checki "two exact entries" 2 (Cache.exact_count c);
  (* Keep flow 1001 warm past the idle horizon; 1002 and the megaflow
     (last used at t=0) go idle. *)
  ignore (Cache.lookup c (flow ~sport:1001 ()) ~now:(t_ms 900.0));
  let dropped = Cache.revalidate c ~now:(t_ms 1500.0) ~reason:"test" in
  checkb "idle entries dropped" true (dropped >= 2);
  checkb "warm entry survived" true (Cache.mem_exact c (flow ~sport:1001 ()));
  checkb "idle entry evicted" false (Cache.mem_exact c (flow ~sport:1002 ()));
  checki "idle megaflow evicted" 0 (Cache.megaflow_count c);
  checkb "counted as evictions" true (Cache.evictions c >= 2)

let test_invalidate_flow_is_selective () =
  let p = allow_all_policy () in
  Rules.Policy.add_acl p (deny_port_rule 6666);
  let c = Cache.create ~config:small_config ~name:"t" ~policy:p () in
  let f80 = flow ~dport:80 () and f6666 = flow ~dport:6666 () in
  ignore (Cache.install c f80 ~now:(t_ms 0.0));
  ignore (Cache.install c f6666 ~now:(t_ms 0.0));
  checki "two megaflows" 2 (Cache.megaflow_count c);
  let dropped = Cache.invalidate_flow c f80 ~now:(t_ms 1.0) ~reason:"test" in
  checki "exact + covering megaflow dropped" 2 dropped;
  checkb "other exact entry untouched" true (Cache.mem_exact c f6666);
  checki "other megaflow untouched" 1 (Cache.megaflow_count c)

let test_exact_tier_disabled () =
  let p = allow_all_policy () in
  let c =
    Cache.create
      ~config:{ small_config with Cache.exact_capacity = 0 }
      ~name:"t" ~policy:p ()
  in
  let f = flow () in
  ignore (Cache.install c f ~now:(t_ms 0.0));
  checki "no exact entry" 0 (Cache.exact_count c);
  (match Cache.lookup c f ~now:(t_ms 1.0) with
  | Some (_, Cache.Megaflow) -> ()
  | Some (_, Cache.Exact) -> Alcotest.fail "exact tier is disabled"
  | None -> Alcotest.fail "megaflow should still serve");
  checki "still no exact entry" 0 (Cache.exact_count c)

(* Equivalence property: whatever interleaving of lookups, policy
   mutations, revalidator passes and targeted invalidations occurs, a
   verdict served by the cache equals a fresh full classification at
   that instant. Tiny capacities force constant eviction churn. *)
let universe =
  [|
    flow ~sport:1000 ~dport:80 ();
    flow ~sport:1001 ~dport:80 ();
    flow ~sport:1000 ~dport:443 ();
    flow ~sport:1002 ~dport:6666 ();
    flow ~sport:1003 ~dport:22 ();
    flow ~sport:1001 ~dport:6666 ();
  |]

let prop_cache_matches_oracle =
  QCheck2.Test.make ~name:"cached verdicts equal fresh classification" ~count:100
    QCheck2.Gen.(list_size (int_range 1 120) (int_range 0 10_000))
    (fun ops ->
      let p = allow_all_policy () in
      let c =
        Cache.create
          ~config:
            { small_config with Cache.exact_capacity = 2; megaflow_capacity = 2 }
          ~name:"prop" ~policy:p ()
      in
      let ports = [| 80; 443; 6666; 22 |] in
      let step = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          incr step;
          let now = t_ms (float_of_int !step) in
          let f = universe.(op mod Array.length universe) in
          match (op / 7) mod 9 with
          | 0 | 1 | 2 | 3 | 4 ->
              let v =
                match Cache.lookup c f ~now with
                | Some (v, _) -> v
                | None -> Cache.install c f ~now
              in
              if v <> Rules.Policy.classify p f then ok := false
          | 5 ->
              Rules.Policy.add_acl p
                (Rules.Security_rule.make
                   ~priority:(6 + (op mod 4))
                   { Pattern.any with Pattern.dst_port = Some ports.(op mod 4) }
                   (if op mod 2 = 0 then Rules.Security_rule.Deny
                    else Rules.Security_rule.Allow))
          | 6 ->
              if op mod 2 = 0 then
                Rules.Policy.install_tunnel p
                  (Rules.Tunnel_rule.make ~tenant ~vm_ip:peer_ip
                     {
                       Rules.Tunnel_rule.server_ip =
                         Netcore.Ipv4.of_string "192.168.1.10";
                       tor_ip = Netcore.Ipv4.of_string "192.168.0.1";
                     })
              else Rules.Policy.remove_tunnel p ~vm_ip:peer_ip
          | 7 -> ignore (Cache.revalidate c ~now ~reason:"test")
          | _ -> ignore (Cache.invalidate_flow c f ~now ~reason:"test"))
        ops;
      !ok)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "miss install hit" test_miss_install_hit;
    t "megaflow absorbs flows" test_megaflow_absorbs_flows;
    t "mask specificity" test_mask_specificity;
    t "lru eviction order" test_lru_eviction_order;
    t "policy change flushes" test_policy_change_flushes;
    t "revalidate evicts idle" test_revalidate_evicts_idle;
    t "invalidate flow is selective" test_invalidate_flow_is_selective;
    t "exact tier disabled" test_exact_tier_disabled;
    QCheck_alcotest.to_alcotest prop_cache_matches_oracle;
  ]
