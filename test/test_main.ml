(* Aggregated test runner: one Alcotest section per library. *)
let () =
  Alcotest.run "fastrak"
    [
      ("dcsim", Test_dcsim.suite);
      ("engine", Test_engine.suite);
      ("netcore", Test_netcore.suite);
      ("rules", Test_rules.suite);
      ("shaping", Test_shaping.suite);
      ("compute", Test_compute.suite);
      ("tcp", Test_tcp.suite);
      ("dataplane", Test_dataplane.suite);
      ("flow_cache", Test_flow_cache.suite);
      ("fastrak", Test_fastrak.suite);
      ("faults", Test_faults.suite);
      ("failover", Test_failover.suite);
      ("obs", Test_obs.suite);
      ("workloads", Test_workloads.suite);
    ]
