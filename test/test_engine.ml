(* Tests for the sharded engine: window execution, the cluster's
   conservative-lookahead scheduler, latency-bearing fabric channels,
   and the sharded-vs-single-engine equivalence properties. *)

module Simtime = Dcsim.Simtime
module Engine = Dcsim.Engine
module Cluster = Dcsim.Cluster
module Channel = Fabric.Channel

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let ns = Simtime.of_ns
let span = Simtime.span_ns

(* --- Engine.run_window --- *)

let test_run_window_exclusive_bound () =
  let e = Engine.create () in
  let fired = ref [] in
  let at t = ignore (Engine.at e (ns t) (fun () -> fired := t :: !fired)) in
  at 10;
  at 20;
  at 30;
  Engine.run_window e ~until_exclusive:(ns 20);
  check
    Alcotest.(list int)
    "only the strictly-before event fired" [ 10 ] (List.rev !fired);
  checki "clock parked at the boundary" 20 (Simtime.to_ns (Engine.now e));
  checki "two events still pending" 2 (Engine.pending_events e);
  (* An injection exactly at the boundary is legal: [at]'s not-in-the-
     past guard accepts time = clock. *)
  at 20;
  Engine.run_window e ~until_exclusive:(ns 40);
  check
    Alcotest.(list int)
    "boundary injection ran in the next window" [ 10; 20; 20; 30 ]
    (List.rev !fired)

let test_run_window_empty_advances_clock () =
  let e = Engine.create () in
  Engine.run_window e ~until_exclusive:(ns 100);
  checki "clock advanced through the empty window" 100
    (Simtime.to_ns (Engine.now e));
  check (Alcotest.option Alcotest.int) "nothing pending" None
    (Option.map Simtime.to_ns (Engine.next_event_time e))

let test_advance_clock_monotone () =
  let e = Engine.create () in
  Engine.advance_clock e (ns 50);
  checki "advanced" 50 (Simtime.to_ns (Engine.now e));
  Engine.advance_clock e (ns 20);
  checki "never moves backwards" 50 (Simtime.to_ns (Engine.now e))

(* --- Fabric.Channel --- *)

let test_channel_min_latency () =
  let src = Engine.create () and dst = Engine.create () in
  let cluster = Cluster.create ~shards:[| src; dst |] in
  let deliveries = ref [] in
  let ch =
    Channel.create ~cluster ~src ~dst ~latency:(span 5_000)
      ~handler:(fun label ->
        deliveries := (label, Simtime.to_ns (Engine.now dst)) :: !deliveries)
      ()
  in
  ignore (Engine.at src (ns 10_000) (fun () -> Channel.send ch "a"));
  Cluster.run cluster;
  check
    Alcotest.(list (pair string int))
    "delivered exactly one propagation delay later"
    [ ("a", 15_000) ]
    (List.rev !deliveries);
  checki "sent" 1 (Channel.messages_sent ch);
  checki "delivered" 1 (Channel.messages_delivered ch);
  checki "in flight" 0 (Channel.in_flight ch)

let test_channel_fifo () =
  let src = Engine.create () and dst = Engine.create () in
  let cluster = Cluster.create ~shards:[| src; dst |] in
  let deliveries = ref [] in
  let ch =
    Channel.create ~cluster ~src ~dst ~latency:(span 3_000)
      ~handler:(fun label -> deliveries := label :: !deliveries)
      ()
  in
  (* Three sends from the same instant: same earliest delivery time,
     and the channel must not reorder them. *)
  ignore
    (Engine.at src (ns 1_000) (fun () ->
         Channel.send ch "first";
         Channel.send ch "second";
         Channel.send ch "third"));
  Cluster.run cluster;
  check
    Alcotest.(list string)
    "same-instant sends stay in order"
    [ "first"; "second"; "third" ]
    (List.rev !deliveries)

let test_channel_rejects_zero_cross_shard_latency () =
  let src = Engine.create () and dst = Engine.create () in
  Alcotest.check_raises "zero latency across shards"
    (Invalid_argument
       "Fabric.Channel.create fabric.chan: cross-shard latency must be \
        positive")
    (fun () ->
      ignore
        (Channel.create ~src ~dst ~latency:Simtime.span_zero
           ~handler:(fun () -> ())
           ()))

let test_channel_same_engine_zero_latency_ok () =
  let e = Engine.create () in
  let got = ref 0 in
  let ch =
    Channel.create ~src:e ~dst:e ~latency:Simtime.span_zero
      ~handler:(fun x -> got := x)
      ()
  in
  ignore (Engine.at e (ns 100) (fun () -> Channel.send ch 42));
  Engine.run e;
  checki "delivered on the same engine" 42 !got

let test_unregistered_fast_channel_violates_lookahead () =
  let e0 = Engine.create () and e1 = Engine.create () in
  let cluster = Cluster.create ~shards:[| e0; e1 |] in
  (* The registered channel fixes the window at 10 us... *)
  let _slow =
    Channel.create ~cluster ~src:e0 ~dst:e1 ~latency:(span 10_000)
      ~handler:(fun () -> ())
      ()
  in
  (* ...but this 1 us back-channel skipped registration, so a send from
     shard 1 mid-window lands in shard 0's past (shard 0 has already
     run to the window end). *)
  let fast =
    Channel.create ~name:"rogue" ~src:e1 ~dst:e0 ~latency:(span 1_000)
      ~handler:(fun () -> ())
      ()
  in
  ignore (Engine.at e0 (ns 5_000) (fun () -> ()));
  ignore (Engine.at e1 (ns 5_000) (fun () -> Channel.send fast ()));
  checkb "send raises Invalid_argument" true
    (try
       Cluster.run cluster;
       false
     with Invalid_argument _ -> true)

(* --- Cluster --- *)

let test_cluster_requires_lookahead () =
  let e0 = Engine.create () and e1 = Engine.create () in
  let cluster = Cluster.create ~shards:[| e0; e1 |] in
  ignore (Engine.at e0 (ns 10) (fun () -> ()));
  checkb "multi-shard run without a registered bound rejected" true
    (try
       Cluster.run cluster;
       false
     with Invalid_argument _ -> true)

let test_cluster_rejects_duplicate_shards () =
  let e = Engine.create () in
  checkb "duplicate engine rejected" true
    (try
       ignore (Cluster.create ~shards:[| e; e |]);
       false
     with Invalid_argument _ -> true)

let test_cluster_lockstep_ping_pong () =
  let e0 = Engine.create () and e1 = Engine.create () in
  let cluster = Cluster.create ~shards:[| e0; e1 |] in
  let latency = span 7_000 in
  let log = ref [] in
  let ping = ref (fun _ -> ()) and pong = ref (fun _ -> ()) in
  let fwd =
    Channel.create ~cluster ~src:e0 ~dst:e1 ~latency
      ~handler:(fun n -> !pong n)
      ()
  in
  let back =
    Channel.create ~cluster ~src:e1 ~dst:e0 ~latency
      ~handler:(fun n -> !ping n)
      ()
  in
  (ping :=
     fun n ->
       log := ("e0", n, Simtime.to_ns (Engine.now e0)) :: !log;
       if n < 4 then Channel.send fwd (n + 1));
  (pong :=
     fun n ->
       log := ("e1", n, Simtime.to_ns (Engine.now e1)) :: !log;
       Channel.send back (n + 1));
  ignore (Engine.at e0 (ns 0) (fun () -> !ping 0));
  Cluster.run cluster;
  check
    Alcotest.(list (triple string int int))
    "alternating hops, one propagation delay apart"
    [
      ("e0", 0, 0);
      ("e1", 1, 7_000);
      ("e0", 2, 14_000);
      ("e1", 3, 21_000);
      ("e0", 4, 28_000);
    ]
    (List.rev !log);
  checkb "lockstep windows were used" true (Cluster.windows_run cluster > 0);
  checki "five events total" 5 (Cluster.events_processed cluster)

let test_cluster_until_parks_clocks () =
  let e0 = Engine.create () and e1 = Engine.create () in
  let cluster = Cluster.create ~shards:[| e0; e1 |] in
  let _ch =
    Channel.create ~cluster ~src:e0 ~dst:e1 ~latency:(span 1_000)
      ~handler:(fun () -> ())
      ()
  in
  let fired = ref 0 in
  ignore (Engine.at e0 (ns 5_000) (fun () -> incr fired));
  ignore (Engine.at e1 (ns 50_000) (fun () -> incr fired));
  Cluster.run ~until:(ns 20_000) cluster;
  checki "only the in-limit event fired" 1 !fired;
  checki "shard 0 parked at the limit" 20_000 (Simtime.to_ns (Engine.now e0));
  checki "shard 1 parked at the limit" 20_000 (Simtime.to_ns (Engine.now e1));
  checki "late event still pending" 1 (Engine.pending_events e1);
  (* A later run picks the remaining event up. *)
  Cluster.run cluster;
  checki "resumed past the limit" 2 !fired

let test_cluster_single_shard_degenerates () =
  let e = Engine.create () in
  let cluster = Cluster.create ~shards:[| e |] in
  let fired = ref [] in
  ignore (Engine.at e (ns 10) (fun () -> fired := 10 :: !fired));
  ignore (Engine.at e (ns 20) (fun () -> fired := 20 :: !fired));
  (* No channels, no lookahead: a single shard must not need windows. *)
  Cluster.run cluster;
  check Alcotest.(list int) "ran everything" [ 10; 20 ] (List.rev !fired);
  checki "no lockstep windows" 0 (Cluster.windows_run cluster)

(* --- sharded vs single-engine trace equivalence (property) ---

   A workload of bouncing messages between two racks must produce the
   same per-rack (time, item, hop) event sequence whether the racks
   live on two cluster shards or share one engine. Item start times are
   staggered (unique offsets) and the channel latency is a large prime,
   so no two events on one rack ever share an instant and the per-rack
   sequences are fully determined. *)

let bounce_workload ~mk_engines items =
  let e0, e1, run = mk_engines () in
  let engines = [| e0; e1 |] in
  let log = ref [] in
  let latency = span 1_000_003 in
  let handlers = Array.make 2 (fun (_ : int * int * int) -> ()) in
  let chans =
    Array.init 2 (fun i ->
        (i, Channel.create ~src:engines.(1 - i) ~dst:engines.(i) ~latency
              ~handler:(fun msg -> handlers.(i) msg)
              ()))
  in
  let channels = Array.map snd chans in
  Array.iteri
    (fun i _ ->
      handlers.(i) <-
        (fun (item, hop, hops_left) ->
          log := (i, Simtime.to_ns (Engine.now engines.(i)), item, hop) :: !log;
          if hops_left > 0 then
            Channel.send channels.(1 - i) (item, hop + 1, hops_left - 1)))
    handlers;
  List.iteri
    (fun idx (rack, hops) ->
      let rack = rack land 1 in
      let t = ns ((idx * 100) + 1) in
      ignore
        (Engine.at engines.(rack) t (fun () ->
             log := (rack, Simtime.to_ns (Engine.now engines.(rack)), idx, 0) :: !log;
             if hops > 0 then
               Channel.send channels.(1 - rack) (idx, 1, hops - 1))))
    items;
  run ();
  List.rev !log

let sharded_engines () =
  let e0 = Engine.create () and e1 = Engine.create () in
  let cluster = Cluster.create ~shards:[| e0; e1 |] in
  Cluster.constrain_lookahead cluster (span 1_000_003);
  (e0, e1, fun () -> Cluster.run cluster)

let single_engine () =
  let e = Engine.create () in
  (e, e, fun () -> Engine.run e)

let per_rack rack log =
  List.filter_map
    (fun (r, t, item, hop) -> if r = rack then Some (t, item, hop) else None)
    log

let prop_sharded_matches_single =
  QCheck2.Test.make ~name:"2-shard bounce trace equals single-engine trace"
    ~count:100
    QCheck2.Gen.(
      list_size (int_range 1 20) (pair (int_range 0 1) (int_range 0 6)))
    (fun items ->
      let sharded = bounce_workload ~mk_engines:sharded_engines items in
      let single = bounce_workload ~mk_engines:single_engine items in
      per_rack 0 sharded = per_rack 0 single
      && per_rack 1 sharded = per_rack 1 single
      && List.length sharded = List.length single)

(* --- dcscale end to end --- *)

let dcscale_test_config =
  {
    Experiments.Dcscale.default_config with
    Experiments.Dcscale.racks = 2;
    duration = 0.2;
    express_messages = 16;
    soft_messages = 4;
    message_size = 2048;
  }

let test_dcscale_sharded_equals_single () =
  let sharded =
    Experiments.Dcscale.run ~config:dcscale_test_config ()
  in
  let single =
    Experiments.Dcscale.run
      ~config:{ dcscale_test_config with Experiments.Dcscale.sharded = false }
      ()
  in
  checki "every express byte delivered (sharded)"
    (2 * 16 * 2048)
    sharded.Experiments.Dcscale.express_bytes;
  checki "express bytes equal" sharded.Experiments.Dcscale.express_bytes
    single.Experiments.Dcscale.express_bytes;
  checki "soft bytes equal" sharded.Experiments.Dcscale.soft_bytes
    single.Experiments.Dcscale.soft_bytes;
  checki "no core drops" 0 sharded.Experiments.Dcscale.core_dropped;
  check Alcotest.string "migration committed (sharded)" "committed"
    sharded.Experiments.Dcscale.migration_outcome;
  check Alcotest.string "migration committed (single)" "committed"
    single.Experiments.Dcscale.migration_outcome;
  checkb "sharded layout used one shard per rack plus the core" true
    (sharded.Experiments.Dcscale.shard_count = 3);
  checkb "sharded layout ran lockstep windows" true
    (sharded.Experiments.Dcscale.windows > 0);
  checki "single layout is one shard" 1 single.Experiments.Dcscale.shard_count

let suite =
  [
    Alcotest.test_case "run_window: exclusive bound" `Quick
      test_run_window_exclusive_bound;
    Alcotest.test_case "run_window: empty window advances clock" `Quick
      test_run_window_empty_advances_clock;
    Alcotest.test_case "advance_clock is monotone" `Quick
      test_advance_clock_monotone;
    Alcotest.test_case "channel: delivery after min latency" `Quick
      test_channel_min_latency;
    Alcotest.test_case "channel: FIFO for same-instant sends" `Quick
      test_channel_fifo;
    Alcotest.test_case "channel: zero cross-shard latency rejected" `Quick
      test_channel_rejects_zero_cross_shard_latency;
    Alcotest.test_case "channel: same-engine zero latency allowed" `Quick
      test_channel_same_engine_zero_latency_ok;
    Alcotest.test_case "channel: unregistered fast channel trips the guard"
      `Quick test_unregistered_fast_channel_violates_lookahead;
    Alcotest.test_case "cluster: lookahead required for multi-shard" `Quick
      test_cluster_requires_lookahead;
    Alcotest.test_case "cluster: duplicate shards rejected" `Quick
      test_cluster_rejects_duplicate_shards;
    Alcotest.test_case "cluster: lockstep ping-pong" `Quick
      test_cluster_lockstep_ping_pong;
    Alcotest.test_case "cluster: run ~until parks all clocks" `Quick
      test_cluster_until_parks_clocks;
    Alcotest.test_case "cluster: single shard degenerates to Engine.run"
      `Quick test_cluster_single_shard_degenerates;
    QCheck_alcotest.to_alcotest prop_sharded_matches_single;
    Alcotest.test_case "dcscale: sharded run equals single-engine run" `Slow
      test_dcscale_sharded_equals_single;
  ]
