(* Tests for the data-plane failure domains: TCAM entry accounting
   under failed installs, express-lane failover and re-promotion
   hysteresis, local-controller crash recovery, the anti-entropy audit
   sweep, and a recovery-convergence property over random link-down
   schedules (driven through the fabric-chaos experiment, which is the
   smallest thing that owns a real express lane). *)

module Simtime = Dcsim.Simtime
module Fkey = Netcore.Fkey
module Fabric_chaos = Experiments.Fabric_chaos
module Testbed = Experiments.Testbed

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let counter name =
  match Obs.Metrics.find name with
  | Some (Obs.Metrics.Counter_v n) -> n
  | _ -> 0

(* --- TCAM entry accounting --- *)

let test_tcam_over_release () =
  let tcam = Tor.Tcam.create ~capacity:4 in
  checkb "reserve" true (Tor.Tcam.reserve tcam 3);
  Tor.Tcam.release tcam 2;
  checki "one left" 1 (Tor.Tcam.used tcam);
  checkb "over-release raises" true
    (try
       Tor.Tcam.release tcam 2;
       false
     with Invalid_argument _ -> true);
  (* The failed release must not have clobbered the count. *)
  checki "count intact" 1 (Tor.Tcam.used tcam)

(* A compiled single-destination rule set for [a] -> [b], as the
   controller and the static provisioning both build. *)
let compiled_for (a : Host.Server.attached) (b : Host.Server.attached) =
  let tenant = Host.Vm.tenant a.Host.Server.vm in
  let ip_a = Host.Vm.ip a.Host.Server.vm
  and ip_b = Host.Vm.ip b.Host.Server.vm in
  let selection =
    { (Fkey.Pattern.from_vm ip_a tenant) with Fkey.Pattern.dst_ip = Some ip_b }
  in
  match
    Rules.Rule_compiler.compile
      ~policy:(Vswitch.Ovs.vif_policy a.Host.Server.vif)
      ~selection ~destinations:[ ip_b ]
  with
  | Ok compiled -> compiled
  | Error e ->
      Alcotest.fail
        (Format.asprintf "compile: %a" Rules.Rule_compiler.pp_error e)

let two_vm_testbed ?tcam_capacity () =
  let tb = Testbed.create ~server_count:2 ?tcam_capacity () in
  let a =
    Testbed.add_vm tb (Testbed.vm_spec ~server:0 ~name:"a" ~ip_last_octet:1 ())
  in
  let b =
    Testbed.add_vm tb (Testbed.vm_spec ~server:1 ~name:"b" ~ip_last_octet:2 ())
  in
  Testbed.connect_tunnels tb;
  (tb, a, b)

(* A failed install — TCAM full or injected install fault — must be
   atomic: no entries consumed, so the demote-after-failed-install path
   has nothing to roll back and can never double-release. *)
let test_failed_install_releases_nothing () =
  (* Capacity 0: every install fails with `Tcam_full. *)
  let tb, a, b = two_vm_testbed ~tcam_capacity:0 () in
  let tenant = Host.Vm.tenant a.Host.Server.vm in
  let vrf = Tor.Tor_switch.vrf tb.Testbed.tor tenant in
  let tcam = Tor.Tor_switch.tcam tb.Testbed.tor in
  let compiled = compiled_for a b in
  for _ = 1 to 5 do
    checkb "tcam full" true (Tor.Vrf.install vrf compiled = Error `Tcam_full)
  done;
  checki "nothing consumed" 0 (Tor.Tcam.used tcam);
  (* Injected install faults on a roomy TCAM: same atomicity. *)
  let tb, a, b = two_vm_testbed () in
  let tenant = Host.Vm.tenant a.Host.Server.vm in
  let vrf = Tor.Tor_switch.vrf tb.Testbed.tor tenant in
  let tcam = Tor.Tor_switch.tcam tb.Testbed.tor in
  let compiled = compiled_for a b in
  Tor.Vrf.set_install_fault vrf (Some (fun () -> true));
  for _ = 1 to 5 do
    checkb "install fault" true (Tor.Vrf.install vrf compiled = Error `Install_fault)
  done;
  checki "nothing consumed either" 0 (Tor.Tcam.used tcam);
  (* Healthy path: install, then remove twice — the second remove is an
     idempotent no-op, not a double-release. *)
  Tor.Vrf.set_install_fault vrf None;
  let h =
    match Tor.Vrf.install vrf compiled with
    | Ok h -> h
    | Error _ -> Alcotest.fail "healthy install refused"
  in
  checkb "entries consumed" true (Tor.Tcam.used tcam > 0);
  Tor.Vrf.remove vrf h;
  checki "entries returned" 0 (Tor.Tcam.used tcam);
  Tor.Vrf.remove vrf h;
  checki "remove idempotent" 0 (Tor.Tcam.used tcam)

(* --- Anti-entropy audit --- *)

let fast_config =
  {
    Fastrak.Config.default with
    Fastrak.Config.epoch_period = Simtime.span_ms 100.0;
    poll_gap = Simtime.span_ms 40.0;
    min_score = 100.0;
  }

(* One offload-bearing rack under load: a transactional client hot
   enough for the decision loop to offload within ~1.5 s. *)
let offloaded_rack () =
  let tb, a, b = two_vm_testbed () in
  let rm =
    Fastrak.Rule_manager.create ~engine:tb.Testbed.engine ~config:fast_config
      ~tor:tb.Testbed.tor
      ~servers:(Array.to_list tb.Testbed.servers)
      ()
  in
  Workloads.Transactions.Server.install ~vm:b.Host.Server.vm ~port:9000
    ~response_size:64 ();
  let _client =
    Workloads.Transactions.Client.start ~engine:tb.Testbed.engine
      ~vm:a.Host.Server.vm
      {
        Workloads.Transactions.Client.servers =
          [ (Host.Vm.ip b.Host.Server.vm, 9000) ];
        connections = 1;
        outstanding = 8;
        request_size = 64;
        total_requests = None;
        src_port_base = 50_000;
      }
  in
  Fastrak.Rule_manager.start rm;
  Testbed.run_for tb ~seconds:1.5;
  (tb, a, b, rm)

(* The audit reinstalls managed intent whose TCAM entries were lost to
   a soft error, and never touches entries it did not install (static
   pins). *)
let test_audit_repairs_and_spares_statics () =
  let tb, a, b, rm = offloaded_rack () in
  let tc = Fastrak.Rule_manager.tor_controller rm in
  let n0 = Fastrak.Tor_controller.offloaded_count tc in
  checkb "something offloaded" true (n0 > 0);
  let tenant = Host.Vm.tenant a.Host.Server.vm in
  let vrf = Tor.Tor_switch.vrf tb.Testbed.tor tenant in
  (* Every live handle so far is controller-installed. *)
  let managed = Tor.Vrf.live_handles vrf in
  checkb "managed entries live" true (managed <> []);
  (* A static pin the controller knows nothing about. *)
  let hs =
    match Tor.Vrf.install vrf (compiled_for b a) with
    | Ok h -> h
    | Error _ -> Alcotest.fail "static install refused"
  in
  let live0 = Tor.Vrf.installed_count vrf in
  (* Soft-error one managed entry: rules vanish, intent does not. *)
  let m = List.hd managed in
  Tor.Vrf.remove vrf m;
  checkb "entry lost" false (Tor.Vrf.is_live vrf m);
  let reinstalls0 = counter "fastrak.audit.reinstalls" in
  let orphans0 = counter "fastrak.audit.orphans_removed" in
  Fastrak.Tor_controller.audit_tcam tc;
  checkb "lost entry reinstalled" true
    (counter "fastrak.audit.reinstalls" > reinstalls0);
  checki "hardware view restored" live0 (Tor.Vrf.installed_count vrf);
  checki "intent unchanged" n0 (Fastrak.Tor_controller.offloaded_count tc);
  checkb "static pin untouched" true (Tor.Vrf.is_live vrf hs);
  checki "static not treated as orphan" orphans0
    (counter "fastrak.audit.orphans_removed")

(* --- Express-lane failover, end to end --- *)

(* Run fabric-chaos on a fixed 2-rack ring under a given schedule; the
   schedule_spec ref is restored afterwards so other tests (and the
   CLI default) are unaffected. *)
let chaos_run ~spec ?(crash = false) () =
  let saved = !Fabric_chaos.schedule_spec in
  Fun.protect
    ~finally:(fun () -> Fabric_chaos.schedule_spec := saved)
    (fun () ->
      Fabric_chaos.schedule_spec := spec;
      let cfg =
        {
          Fabric_chaos.default_config with
          Fabric_chaos.racks = 2;
          crash_at = (if crash then 2.0 else -1.0);
          restart_at = 2.3;
        }
      in
      Fabric_chaos.run ~config:cfg ())

(* A single clean outage window: every lane goes down exactly once and
   comes back exactly once (no flapping), every demoted aggregate is
   re-promoted, and the recovery-time summary sees the outage. *)
let test_lane_failover_hysteresis () =
  let r = chaos_run ~spec:"down=1:1.6" () in
  checkb "delivered" true (r.Fabric_chaos.express_acked > 0);
  checki "each lane down once" r.Fabric_chaos.lanes_total r.Fabric_chaos.lane_downs;
  checki "each lane healed once" r.Fabric_chaos.lanes_total r.Fabric_chaos.lane_ups;
  checkb "flows demoted" true (r.Fabric_chaos.failover_demotions > 0);
  checki "every demotion re-promoted" r.Fabric_chaos.failover_demotions
    r.Fabric_chaos.repromotions;
  checki "one recovery per heal" r.Fabric_chaos.lane_ups r.Fabric_chaos.recovery_count;
  checkb "recovery time ~ outage width" true
    (r.Fabric_chaos.recovery_mean_s > 0.5 && r.Fabric_chaos.recovery_mean_s < 0.9);
  checki "all lanes up at end" r.Fabric_chaos.lanes_total
    r.Fabric_chaos.lanes_up_at_end;
  checkb "views reconciled" true r.Fabric_chaos.reconciled;
  checki "nothing blackholed" 0 r.Fabric_chaos.no_route_drops

(* Controller crash mid-run on an otherwise healthy fabric: the
   restart resyncs against the TOR controller and the views converge. *)
let test_crash_restart_reconciles () =
  let r = chaos_run ~spec:"none" ~crash:true () in
  Alcotest.check Alcotest.string "crash recovered" "recovered"
    r.Fabric_chaos.crash_outcome;
  checkb "restart resynced" true (r.Fabric_chaos.resyncs >= 1);
  checkb "delivered" true (r.Fabric_chaos.express_acked > 0);
  checkb "views reconciled" true r.Fabric_chaos.reconciled;
  checki "nothing blackholed" 0 r.Fabric_chaos.no_route_drops

(* Property: under ANY random link-down window that closes before the
   load stops, the system converges — every lane heals, delivery
   resumes, the TOR-side and server-side offload views reconcile, and
   nothing is left routeless. *)
let prop_recovery_after_random_outage =
  QCheck.Test.make ~count:4 ~name:"recovery after random link-down schedule"
    (QCheck.pair (QCheck.int_range 0 1000) (QCheck.int_range 0 1000))
    (fun (a, b) ->
      let from_s = 0.3 +. (float_of_int a /. 1000.0 *. 1.2) in
      let width = 0.1 +. (float_of_int b /. 1000.0 *. 0.7) in
      let spec = Printf.sprintf "down=%.3f:%.3f" from_s (from_s +. width) in
      let r = chaos_run ~spec () in
      if r.Fabric_chaos.express_acked = 0 then
        QCheck.Test.fail_reportf "%s: no delivery at all" spec;
      if r.Fabric_chaos.lanes_up_at_end <> r.Fabric_chaos.lanes_total then
        QCheck.Test.fail_reportf "%s: %d/%d lanes still down after heal" spec
          (r.Fabric_chaos.lanes_total - r.Fabric_chaos.lanes_up_at_end)
          r.Fabric_chaos.lanes_total;
      if not r.Fabric_chaos.reconciled then
        QCheck.Test.fail_reportf "%s: offload views diverged" spec;
      if r.Fabric_chaos.no_route_drops <> 0 then
        QCheck.Test.fail_reportf "%s: %d packets blackholed" spec
          r.Fabric_chaos.no_route_drops;
      true)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "tcam over-release raises" test_tcam_over_release;
    t "failed install releases nothing" test_failed_install_releases_nothing;
    t "audit repairs losses, spares statics" test_audit_repairs_and_spares_statics;
    t "lane failover with hysteresis" test_lane_failover_hysteresis;
    t "crash restart reconciles" test_crash_restart_reconciles;
    QCheck_alcotest.to_alcotest prop_recovery_after_random_outage;
  ]
