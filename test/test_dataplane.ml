(* Integration tests of the dataplane components: Link, Ovs, Sriov,
   Tcam/Vrf/Tor_switch, Qos_queue, and Server/Vm/Bonding assembly. *)

module Simtime = Dcsim.Simtime
module Engine = Dcsim.Engine
module Packet = Netcore.Packet
module Fkey = Netcore.Fkey
module Ipv4 = Netcore.Ipv4

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let tenant = Netcore.Tenant.of_int 7

let flow ?(src = "10.7.0.1") ?(dst = "10.7.0.2") ?(sport = 1000) ?(dport = 80) () =
  Fkey.make ~src_ip:(Ipv4.of_string src) ~dst_ip:(Ipv4.of_string dst)
    ~src_port:sport ~dst_port:dport ~proto:Fkey.Tcp ~tenant

let pkt ?(payload = 1000) f = Packet.data_packet ~now:Simtime.zero ~flow:f ~payload

(* --- Link --- *)

let test_link_delivery_timing () =
  let engine = Engine.create () in
  let arrived = ref Simtime.zero in
  let link =
    Fabric.Link.create ~engine ~name:"l" ~gbps:10.0
      ~latency:(Simtime.span_us 1.0)
      ~deliver:(fun _ -> arrived := Engine.now engine)
      ()
  in
  let p = pkt ~payload:1000 (flow ()) in
  let expected_ser =
    Simtime.span_of_bytes_at_rate ~bytes_len:(Fabric.Link.wire_bytes p) ~gbps:10.0
  in
  Fabric.Link.transmit link p;
  Engine.run engine;
  checki "serialization + latency"
    (Simtime.span_to_ns expected_ser + 1_000)
    (Simtime.to_ns !arrived);
  checki "counted" 1 (Fabric.Link.packets_sent link)

let test_link_fifo_contention () =
  let engine = Engine.create () in
  let order = ref [] in
  let link =
    Fabric.Link.create ~engine ~name:"l" ~gbps:10.0 ~latency:Simtime.span_zero
      ~deliver:(fun p -> order := p.Packet.payload :: !order)
      ()
  in
  for i = 1 to 5 do
    Fabric.Link.transmit link (pkt ~payload:(1000 + i) (flow ()))
  done;
  Engine.run engine;
  Alcotest.check (Alcotest.list Alcotest.int) "fifo"
    [ 1001; 1002; 1003; 1004; 1005 ]
    (List.rev !order)

let test_link_wire_bytes_multiframe () =
  let small = Fabric.Link.wire_bytes (pkt ~payload:100 (flow ())) in
  let big = Fabric.Link.wire_bytes (pkt ~payload:32000 (flow ())) in
  (* 32000 B = 22 frames, each with headers + preamble. *)
  checkb "per-frame overhead scales" true (big > 32000 + (21 * 58));
  checkb "small sane" true (small < 200)

(* --- Tcam --- *)

let test_tcam () =
  let t = Tor.Tcam.create ~capacity:10 in
  checkb "reserve" true (Tor.Tcam.reserve t 7);
  checki "available" 3 (Tor.Tcam.available t);
  checkb "over-reserve refused" false (Tor.Tcam.reserve t 4);
  checki "unchanged" 7 (Tor.Tcam.used t);
  Tor.Tcam.release t 5;
  checki "released" 2 (Tor.Tcam.used t);
  Alcotest.check_raises "over-release" (Invalid_argument "Tcam.release: bad count")
    (fun () -> Tor.Tcam.release t 5)

(* --- Vrf --- *)

let compiled_for ?(dport = 80) () =
  let policy = Rules.Policy.create ~tenant ~vm_ip:(Ipv4.of_string "10.7.0.1") () in
  Rules.Policy.add_acl policy
    (Rules.Security_rule.make ~priority:5
       { Fkey.Pattern.any with Fkey.Pattern.dst_port = Some dport; tenant = Some tenant }
       Allow);
  Rules.Policy.install_tunnel policy
    (Rules.Tunnel_rule.make ~tenant ~vm_ip:(Ipv4.of_string "10.7.0.2")
       {
         Rules.Tunnel_rule.server_ip = Ipv4.of_string "192.168.1.11";
         tor_ip = Ipv4.of_string "192.168.0.1";
       });
  match Rules.Rule_compiler.compile_flow ~policy ~flow:(flow ~dport ()) with
  | Ok c -> c
  | Error _ -> Alcotest.fail "compile failed"

let test_vrf_install_permits () =
  let tcam = Tor.Tcam.create ~capacity:16 in
  let vrf = Tor.Vrf.create ~tenant ~tcam in
  checkb "default deny" false (Tor.Vrf.permits vrf (flow ()));
  let handle =
    match Tor.Vrf.install vrf (compiled_for ()) with
    | Ok h -> h
    | Error (`Tcam_full | `Install_fault) -> Alcotest.fail "unexpected tcam full"
  in
  checkb "permits after install" true (Tor.Vrf.permits vrf (flow ()));
  checkb "other flow still denied" false (Tor.Vrf.permits vrf (flow ~dport:22 ()));
  checkb "tunnel installed" true
    (Tor.Vrf.tunnel_for vrf ~dst_ip:(Ipv4.of_string "10.7.0.2") <> None);
  checki "tcam entries" 2 (Tor.Tcam.used tcam);
  Tor.Vrf.remove vrf handle;
  checkb "deny after remove" false (Tor.Vrf.permits vrf (flow ()));
  checki "tcam returned" 0 (Tor.Tcam.used tcam);
  (* Idempotent removal. *)
  Tor.Vrf.remove vrf handle;
  checki "still zero" 0 (Tor.Tcam.used tcam)

let test_vrf_tcam_full () =
  let tcam = Tor.Tcam.create ~capacity:1 in
  let vrf = Tor.Vrf.create ~tenant ~tcam in
  (match Tor.Vrf.install vrf (compiled_for ()) with
  | Error (`Tcam_full | `Install_fault) -> ()
  | Ok _ -> Alcotest.fail "must not fit");
  checki "atomic failure" 0 (Tor.Tcam.used tcam)

let test_vrf_tunnel_refcount () =
  let tcam = Tor.Tcam.create ~capacity:16 in
  let vrf = Tor.Vrf.create ~tenant ~tcam in
  let h1 = Result.get_ok (Tor.Vrf.install vrf (compiled_for ~dport:80 ())) in
  let _h2 = Result.get_ok (Tor.Vrf.install vrf (compiled_for ~dport:81 ())) in
  Tor.Vrf.remove vrf h1;
  (* The tunnel mapping is shared; the second entry still needs it. *)
  checkb "tunnel survives shared removal" true
    (Tor.Vrf.tunnel_for vrf ~dst_ip:(Ipv4.of_string "10.7.0.2") <> None)

(* --- Qos queue --- *)

let test_qos_strict_priority () =
  let engine = Engine.create () in
  let order = ref [] in
  let link =
    Fabric.Link.create ~engine ~name:"l" ~gbps:10.0 ~latency:Simtime.span_zero
      ~deliver:(fun p -> order := p.Packet.payload :: !order)
      ()
  in
  let q = Tor.Qos_queue.create ~engine ~classes:4 ~link ~gbps:10.0 in
  (* First packet starts transmitting immediately; the rest queue and
     must leave highest class first. *)
  Tor.Qos_queue.enqueue q ~queue:0 (pkt ~payload:9000 (flow ()));
  Tor.Qos_queue.enqueue q ~queue:0 (pkt ~payload:1 (flow ()));
  Tor.Qos_queue.enqueue q ~queue:3 (pkt ~payload:2 (flow ()));
  Tor.Qos_queue.enqueue q ~queue:1 (pkt ~payload:3 (flow ()));
  Engine.run engine;
  Alcotest.check (Alcotest.list Alcotest.int) "priority order"
    [ 9000; 2; 3; 1 ] (List.rev !order);
  checki "sent" 4 (Tor.Qos_queue.packets_sent q)

(* --- End-to-end through a Testbed rack --- *)

let two_vm_testbed ?(config = Compute.Cost_params.baseline) () =
  let tb = Experiments.Testbed.create ~server_count:2 ~config () in
  let a =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:0 ~name:"a" ~ip_last_octet:1 ())
  in
  let b =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:1 ~name:"b" ~ip_last_octet:2 ())
  in
  (tb, a, b)

let test_software_path_delivery () =
  let tb, a, b = two_vm_testbed () in
  let got = ref 0 in
  Host.Vm.register_listener b.Host.Server.vm ~port:80 (fun _ -> incr got);
  let f =
    Fkey.make ~src_ip:(Host.Vm.ip a.Host.Server.vm)
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm) ~src_port:1234 ~dst_port:80
      ~proto:Fkey.Tcp ~tenant
  in
  for _ = 1 to 5 do
    Host.Vm.send a.Host.Server.vm (pkt f)
  done;
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "delivered via vswitch" 5 !got;
  checkb "vswitch processed them" true
    (Vswitch.Ovs.packets_sent (Host.Server.ovs tb.Experiments.Testbed.servers.(0)) >= 5);
  checki "default path is VIF" 5
    (Host.Bonding.packets_via_vif a.Host.Server.bonding)

let test_hardware_path_delivery () =
  let tb, a, b = two_vm_testbed () in
  Experiments.Testbed.force_path_vf tb a;
  let got = ref 0 in
  Host.Vm.register_listener b.Host.Server.vm ~port:80 (fun _ -> incr got);
  let f =
    Fkey.make ~src_ip:(Host.Vm.ip a.Host.Server.vm)
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm) ~src_port:1234 ~dst_port:80
      ~proto:Fkey.Tcp ~tenant
  in
  for _ = 1 to 5 do
    Host.Vm.send a.Host.Server.vm (pkt f)
  done;
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "delivered via hardware path" 5 !got;
  checki "placer sent via VF" 5 (Host.Bonding.packets_via_vf a.Host.Server.bonding);
  checki "vswitch bypassed" 0
    (Vswitch.Ovs.packets_sent (Host.Server.ovs tb.Experiments.Testbed.servers.(0)));
  (* The ToR saw and permitted the offloaded flow. *)
  checkb "tor stats recorded" true
    (List.length (Tor.Tor_switch.offloaded_flows tb.Experiments.Testbed.tor) >= 1)

let test_hardware_path_default_deny () =
  (* A malicious VM pushing traffic through the VF without installed
     rules dies at the ToR ACL (§4.1.3). *)
  let tb, a, b = two_vm_testbed () in
  (* Placer rule without the VRF install. *)
  ignore
    (Host.Bonding.install_rule a.Host.Server.bonding
       ~pattern:(Fkey.Pattern.from_vm (Host.Vm.ip a.Host.Server.vm) tenant)
       ~priority:5 Host.Bonding.Vf);
  let got = ref 0 in
  Host.Vm.register_listener b.Host.Server.vm ~port:80 (fun _ -> incr got);
  let f =
    Fkey.make ~src_ip:(Host.Vm.ip a.Host.Server.vm)
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm) ~src_port:1 ~dst_port:80
      ~proto:Fkey.Tcp ~tenant
  in
  Host.Vm.send a.Host.Server.vm (pkt f);
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "nothing delivered" 0 !got;
  checki "dropped at tor acl" 1 (Tor.Tor_switch.acl_drops tb.Experiments.Testbed.tor)

let test_vswitch_security_drop () =
  let tb = Experiments.Testbed.create ~server_count:2 () in
  let a =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:0 ~name:"a" ~ip_last_octet:1 ())
  in
  let b =
    Experiments.Testbed.add_vm tb
      (Experiments.Testbed.vm_spec ~server:1 ~name:"b" ~ip_last_octet:2 ())
  in
  (* Carve a deny for port 6666 above the allow-all. *)
  Rules.Policy.add_acl
    (Vswitch.Ovs.vif_policy a.Host.Server.vif)
    (Rules.Security_rule.make ~priority:9
       { Fkey.Pattern.any with Fkey.Pattern.dst_port = Some 6666 }
       Deny);
  let got = ref 0 in
  Host.Vm.register_listener b.Host.Server.vm ~port:6666 (fun _ -> incr got);
  let f =
    Fkey.make ~src_ip:(Host.Vm.ip a.Host.Server.vm)
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm) ~src_port:1 ~dst_port:6666
      ~proto:Fkey.Tcp ~tenant
  in
  Host.Vm.send a.Host.Server.vm (pkt f);
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "denied in vswitch" 0 !got;
  checki "security drop counted" 1
    (Vswitch.Ovs.security_drops (Host.Server.ovs tb.Experiments.Testbed.servers.(0)))

let test_vswitch_blocked_flow_drops () =
  let tb, a, b = two_vm_testbed () in
  let got = ref 0 in
  Host.Vm.register_listener b.Host.Server.vm ~port:80 (fun _ -> incr got);
  let f =
    Fkey.make ~src_ip:(Host.Vm.ip a.Host.Server.vm)
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm) ~src_port:1 ~dst_port:80
      ~proto:Fkey.Tcp ~tenant
  in
  let ovs = Host.Server.ovs tb.Experiments.Testbed.servers.(0) in
  Vswitch.Ovs.set_flow_blocked ovs f true;
  Host.Vm.send a.Host.Server.vm (pkt f);
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "blocked" 0 !got;
  checki "drop counted" 1 (Vswitch.Ovs.packets_dropped ovs);
  Vswitch.Ovs.set_flow_blocked ovs f false;
  Host.Vm.send a.Host.Server.vm (pkt f);
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "unblocked flows pass" 1 !got

let test_vswitch_tunneling_path () =
  let tb, a, b = two_vm_testbed ~config:Compute.Cost_params.with_tunneling () in
  Experiments.Testbed.connect_tunnels tb;
  let got = ref 0 in
  Host.Vm.register_listener b.Host.Server.vm ~port:80 (fun _ -> incr got);
  let f =
    Fkey.make ~src_ip:(Host.Vm.ip a.Host.Server.vm)
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm) ~src_port:1 ~dst_port:80
      ~proto:Fkey.Tcp ~tenant
  in
  Host.Vm.send a.Host.Server.vm (pkt f);
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "vxlan end to end" 1 !got

let test_ovs_flow_stats () =
  let tb, a, b = two_vm_testbed () in
  Host.Vm.register_listener b.Host.Server.vm ~port:80 (fun _ -> ());
  let f =
    Fkey.make ~src_ip:(Host.Vm.ip a.Host.Server.vm)
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm) ~src_port:1 ~dst_port:80
      ~proto:Fkey.Tcp ~tenant
  in
  for _ = 1 to 7 do
    Host.Vm.send a.Host.Server.vm (pkt ~payload:500 f)
  done;
  Experiments.Testbed.run_for tb ~seconds:0.1;
  let ovs = Host.Server.ovs tb.Experiments.Testbed.servers.(0) in
  match List.find_opt (fun (fl, _, _) -> Fkey.equal fl f) (Vswitch.Ovs.active_flows ovs) with
  | Some (_, packets, bytes) ->
      checki "packets" 7 packets;
      checki "bytes" 3500 bytes
  | None -> Alcotest.fail "flow stats missing"

let test_ovs_upcall_once_per_flow () =
  let tb, a, b = two_vm_testbed () in
  Host.Vm.register_listener b.Host.Server.vm ~port:80 (fun _ -> ());
  let ovs = Host.Server.ovs tb.Experiments.Testbed.servers.(0) in
  let f =
    Fkey.make ~src_ip:(Host.Vm.ip a.Host.Server.vm)
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm) ~src_port:1 ~dst_port:80
      ~proto:Fkey.Tcp ~tenant
  in
  Host.Vm.send a.Host.Server.vm (pkt f);
  Experiments.Testbed.run_for tb ~seconds:0.1;
  let upcalls_after_first = Vswitch.Ovs.upcalls ovs in
  for _ = 1 to 10 do
    Host.Vm.send a.Host.Server.vm (pkt f)
  done;
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "no further upcalls" upcalls_after_first (Vswitch.Ovs.upcalls ovs);
  (* The vhost services its queue in batches and packets of one flow in
     a batch share a single classification, so ten packets produce at
     least one cache hit, not necessarily ten. *)
  checkb "kernel hits instead" true (Vswitch.Ovs.kernel_hits ovs >= 1)

(* Regression: with the old never-invalidated verdict cache, an ACL
   added after a flow's first packet was ignored for the lifetime of
   the flow. The policy-generation check must flush the cache so the
   new rule bites on the very next packet. *)
let test_ovs_policy_change_after_first_packet () =
  let tb, a, b = two_vm_testbed () in
  let got = ref 0 in
  Host.Vm.register_listener b.Host.Server.vm ~port:80 (fun _ -> incr got);
  let f =
    Fkey.make ~src_ip:(Host.Vm.ip a.Host.Server.vm)
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm) ~src_port:1 ~dst_port:80
      ~proto:Fkey.Tcp ~tenant
  in
  Host.Vm.send a.Host.Server.vm (pkt f);
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "first packet delivered" 1 !got;
  (* Carve a deny above the allow-all after the verdict is cached. *)
  Rules.Policy.add_acl
    (Vswitch.Ovs.vif_policy a.Host.Server.vif)
    (Rules.Security_rule.make ~priority:9
       { Fkey.Pattern.any with Fkey.Pattern.dst_port = Some 80 }
       Deny);
  Host.Vm.send a.Host.Server.vm (pkt f);
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "rule change honoured on the next packet" 1 !got;
  checki "second packet security-dropped" 1
    (Vswitch.Ovs.security_drops (Host.Server.ovs tb.Experiments.Testbed.servers.(0)))

(* Regression: block and unblock taking effect mid-run, with packets
   in flight around both transitions. *)
let test_ovs_block_unblock_midrun () =
  let tb, a, b = two_vm_testbed () in
  let engine = tb.Experiments.Testbed.engine in
  let ovs = Host.Server.ovs tb.Experiments.Testbed.servers.(0) in
  let got = ref 0 in
  Host.Vm.register_listener b.Host.Server.vm ~port:80 (fun _ -> incr got);
  let f =
    Fkey.make ~src_ip:(Host.Vm.ip a.Host.Server.vm)
      ~dst_ip:(Host.Vm.ip b.Host.Server.vm) ~src_port:1 ~dst_port:80
      ~proto:Fkey.Tcp ~tenant
  in
  let send () = Host.Vm.send a.Host.Server.vm (pkt f) in
  send ();
  ignore
    (Engine.after engine (Simtime.span_ms 10.0) (fun () ->
         Vswitch.Ovs.set_flow_blocked ovs f true;
         send ()));
  ignore
    (Engine.after engine (Simtime.span_ms 20.0) (fun () ->
         Vswitch.Ovs.set_flow_blocked ovs f false;
         send ()));
  Experiments.Testbed.run_for tb ~seconds:0.1;
  checki "packets around the blocked window delivered" 2 !got;
  checkb "blocked packet dropped" true (Vswitch.Ovs.packets_dropped ovs >= 1)

(* Ten same-flow packets queued before the engine runs coalesce into
   one vhost batch and pay exactly one upcall. *)
let test_ovs_batch_upcall_dedup () =
  let engine = Engine.create () in
  let host_pool = Compute.Cpu_pool.create ~engine ~cpus:2 ~name:"h" in
  let ovs =
    Vswitch.Ovs.create ~engine ~config:Compute.Cost_params.baseline ~host_pool
      ~server_ip:(Ipv4.of_string "192.168.1.1")
      ~transmit:(fun _ -> ())
      ()
  in
  let policy = Rules.Policy.create ~tenant ~vm_ip:(Ipv4.of_string "10.7.0.1") () in
  Rules.Policy.add_acl policy
    (Rules.Security_rule.make ~priority:5 Fkey.Pattern.any Allow);
  let vif = Vswitch.Ovs.add_vif ovs ~policy ~deliver:(fun _ -> ()) in
  let f = flow () in
  for _ = 1 to 10 do
    Vswitch.Ovs.transmit_from_vif ovs vif (pkt f)
  done;
  Engine.run engine;
  checki "one upcall for the whole batch" 1 (Vswitch.Ovs.upcalls ovs);
  checki "all packets sent" 10 (Vswitch.Ovs.packets_sent ovs)

(* --- Sriov --- *)

let test_sriov_vf_exhaustion () =
  let engine = Engine.create () in
  let host_pool = Compute.Cpu_pool.create ~engine ~cpus:2 ~name:"h" in
  let wire =
    Fabric.Link.create ~engine ~name:"w" ~gbps:10.0 ~latency:Simtime.span_zero
      ~deliver:(fun _ -> ()) ()
  in
  let nic = Nic.Sriov.create ~engine ~max_vfs:2 ~host_pool ~wire () in
  let alloc i =
    Nic.Sriov.allocate_vf nic
      ~mac:(Netcore.Mac.vm_mac ~server:0 ~vm:i)
      ~vlan:7 ~tenant
      ~vm_ip:(Ipv4.of_string (Printf.sprintf "10.7.0.%d" i))
      ~deliver:(fun _ -> ())
  in
  checkb "first" true (Result.is_ok (alloc 1));
  checkb "second" true (Result.is_ok (alloc 2));
  (match alloc 3 with
  | Error `No_vfs_left -> ()
  | Ok _ -> Alcotest.fail "VF limit not enforced");
  checki "count" 2 (Nic.Sriov.vf_count nic)

let test_sriov_steering () =
  let engine = Engine.create () in
  let host_pool = Compute.Cpu_pool.create ~engine ~cpus:2 ~name:"h" in
  let wire =
    Fabric.Link.create ~engine ~name:"w" ~gbps:10.0 ~latency:Simtime.span_zero
      ~deliver:(fun _ -> ()) ()
  in
  let nic = Nic.Sriov.create ~engine ~host_pool ~wire () in
  let got = ref 0 in
  ignore
    (Nic.Sriov.allocate_vf nic
       ~mac:(Netcore.Mac.vm_mac ~server:0 ~vm:2)
       ~vlan:7 ~tenant
       ~vm_ip:(Ipv4.of_string "10.7.0.2")
       ~deliver:(fun _ -> incr got));
  (* Correct VLAN + ip: steered. *)
  let p = pkt (flow ()) in
  Packet.push_encap p (Packet.Vlan 7);
  Nic.Sriov.receive_from_wire nic p;
  (* Wrong VLAN: dropped. *)
  let p2 = pkt (flow ()) in
  Packet.push_encap p2 (Packet.Vlan 8);
  Nic.Sriov.receive_from_wire nic p2;
  (* Untagged: dropped. *)
  Nic.Sriov.receive_from_wire nic (pkt (flow ()));
  Engine.run engine;
  checki "steered" 1 !got;
  checki "drops" 2 (Nic.Sriov.packets_dropped nic)

let test_sriov_vlan_tag_on_tx () =
  let engine = Engine.create () in
  let host_pool = Compute.Cpu_pool.create ~engine ~cpus:2 ~name:"h" in
  let tagged = ref None in
  let wire =
    Fabric.Link.create ~engine ~name:"w" ~gbps:10.0 ~latency:Simtime.span_zero
      ~deliver:(fun p -> tagged := Packet.vlan_of p)
      ()
  in
  let nic = Nic.Sriov.create ~engine ~host_pool ~wire () in
  let vf =
    Result.get_ok
      (Nic.Sriov.allocate_vf nic
         ~mac:(Netcore.Mac.vm_mac ~server:0 ~vm:1)
         ~vlan:7 ~tenant
         ~vm_ip:(Ipv4.of_string "10.7.0.1")
         ~deliver:(fun _ -> ()))
  in
  Nic.Sriov.transmit_from_vf vf (pkt (flow ()));
  Engine.run engine;
  checki "tenant vlan inserted" 7 (Option.get !tagged)

(* --- Bonding --- *)

let test_bonding_default_and_rules () =
  let via = ref [] in
  let b =
    Host.Bonding.create
      ~vif_tx:(fun _ -> via := `Vif :: !via)
      ~vf_tx:(fun _ -> via := `Vf :: !via)
  in
  let f = flow () in
  Host.Bonding.transmit b (pkt f);
  let id =
    Host.Bonding.install_rule b ~pattern:(Fkey.Pattern.exact f) ~priority:5
      Host.Bonding.Vf
  in
  Host.Bonding.transmit b (pkt f);
  checkb "path query" true (Host.Bonding.path_for b f = Host.Bonding.Vf);
  ignore (Host.Bonding.remove_rule b id);
  Host.Bonding.transmit b (pkt f);
  Alcotest.check
    (Alcotest.list (Alcotest.testable (fun ppf -> function
       | `Vif -> Format.pp_print_string ppf "vif"
       | `Vf -> Format.pp_print_string ppf "vf") ( = )))
    "vif, then vf, then vif again" [ `Vif; `Vf; `Vif ] (List.rev !via);
  checki "counters" 2 (Host.Bonding.packets_via_vif b)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "link delivery timing" test_link_delivery_timing;
    t "link fifo contention" test_link_fifo_contention;
    t "link wire bytes multiframe" test_link_wire_bytes_multiframe;
    t "tcam accounting" test_tcam;
    t "vrf install/permits/remove" test_vrf_install_permits;
    t "vrf tcam full atomic" test_vrf_tcam_full;
    t "vrf tunnel refcount" test_vrf_tunnel_refcount;
    t "qos strict priority" test_qos_strict_priority;
    t "software path end-to-end" test_software_path_delivery;
    t "hardware path end-to-end" test_hardware_path_delivery;
    t "hardware path default deny" test_hardware_path_default_deny;
    t "vswitch security drop" test_vswitch_security_drop;
    t "vswitch blocked flow" test_vswitch_blocked_flow_drops;
    t "vswitch vxlan tunneling" test_vswitch_tunneling_path;
    t "ovs flow stats" test_ovs_flow_stats;
    t "ovs upcall once per flow" test_ovs_upcall_once_per_flow;
    t "ovs policy change after first packet" test_ovs_policy_change_after_first_packet;
    t "ovs block unblock midrun" test_ovs_block_unblock_midrun;
    t "ovs batch upcall dedup" test_ovs_batch_upcall_dedup;
    t "sriov vf exhaustion" test_sriov_vf_exhaustion;
    t "sriov rx steering" test_sriov_steering;
    t "sriov vlan tag on tx" test_sriov_vlan_tag_on_tx;
    t "bonding placer rules" test_bonding_default_and_rules;
  ]
